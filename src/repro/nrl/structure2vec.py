"""Structure2Vec: supervised node embeddings via mean-field aggregation.

The paper reimplements Structure2Vec (Dai et al., 2016) as the supervised
alternative to DeepWalk, feeding the fraud ground truth as edge labels.  We
implement the mean-field variant: each node's embedding is produced by a few
rounds of neighbour aggregation,

    mu_v^(t) = ReLU( W1 x_v + W2 * mean_{u in N(v)} mu_u^(t-1) ),

and the parameters (W1, W2, classification head w, b) are trained end to end
with a logistic loss on node-level fraud labels derived from the edge labels
(a node is positive if it received at least one fraudulent transfer in the
training window).  As in the paper, the loss is *not* re-weighted for class
imbalance — this is precisely why S2V embeddings can lose to unsupervised
DeepWalk despite having access to labels.

The learned embedding of node v is mu_v^(T).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.exceptions import EmbeddingError
from repro.graph.network import TransactionNetwork
from repro.nrl.base import NRLModel
from repro.nrl.embeddings import EmbeddingSet
from repro.rng import SeedLike, ensure_rng


@dataclass
class Structure2VecConfig:
    """Hyperparameters of the mean-field Structure2Vec model."""

    dimension: int = 32
    #: Number of mean-field propagation rounds (2 hops is what Figure 2 needs).
    propagation_rounds: int = 2
    learning_rate: float = 0.05
    epochs: int = 150
    l2: float = 1e-4
    #: When True, the logistic loss re-weights the minority class.  The paper's
    #: deployment uses the plain loss (False), which is what makes S2V suffer
    #: from label imbalance relative to DeepWalk.
    balance_classes: bool = False
    seed: Optional[int] = None

    def validate(self) -> None:
        if self.dimension <= 0:
            raise EmbeddingError("dimension must be positive")
        if self.propagation_rounds < 1:
            raise EmbeddingError("propagation_rounds must be at least 1")
        if self.learning_rate <= 0:
            raise EmbeddingError("learning_rate must be positive")
        if self.epochs < 1:
            raise EmbeddingError("epochs must be at least 1")
        if self.l2 < 0:
            raise EmbeddingError("l2 must be non-negative")


def node_structural_features(
    network: TransactionNetwork, nodes: Optional[Sequence[str]] = None
) -> Tuple[List[str], np.ndarray]:
    """Raw structural features x_v used as Structure2Vec inputs.

    Six per-node features derived purely from the network: log in/out degree,
    log total in/out weight, the ratio of in to total degree, and a constant
    bias term.  ``nodes`` restricts the computation to a subset (in the given
    order) — each row depends only on that node's own incident edges, so a
    subset is exactly the corresponding rows of the full matrix.
    """
    nodes = network.nodes() if nodes is None else list(nodes)
    features = np.zeros((len(nodes), 6), dtype=np.float64)
    for row, node in enumerate(nodes):
        in_neighbors = network.predecessors(node)
        out_neighbors = network.successors(node)
        in_degree = len(in_neighbors)
        out_degree = len(out_neighbors)
        in_weight = sum(in_neighbors.values())
        out_weight = sum(out_neighbors.values())
        total_degree = in_degree + out_degree
        features[row] = [
            np.log1p(in_degree),
            np.log1p(out_degree),
            np.log1p(in_weight),
            np.log1p(out_weight),
            in_degree / total_degree if total_degree else 0.0,
            1.0,
        ]
    return nodes, features


def node_labels_from_transactions(transactions) -> Dict[str, int]:
    """Derive node labels from edge (transaction) labels.

    A node is labelled positive if it was the payee of at least one fraudulent
    transaction — i.e. it behaved as a fraudster — and negative otherwise.
    """
    labels: Dict[str, int] = {}
    for txn in transactions:
        labels.setdefault(txn.payer_id, 0)
        labels.setdefault(txn.payee_id, 0)
        if txn.is_fraud:
            labels[txn.payee_id] = 1
    return labels


class Structure2Vec(NRLModel):
    """Supervised mean-field Structure2Vec with a logistic readout."""

    def __init__(self, config: Structure2VecConfig | None = None, *, rng: SeedLike = None):
        self.config = config or Structure2VecConfig()
        self.config.validate()
        self._rng = ensure_rng(self.config.seed if rng is None else rng)
        self._embeddings: Optional[EmbeddingSet] = None
        self.loss_history: List[float] = []
        self._params: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self.config.dimension

    def fit(
        self,
        network: TransactionNetwork,
        *,
        node_labels: Optional[dict[str, int]] = None,
    ) -> "Structure2Vec":
        if network.num_nodes == 0:
            raise EmbeddingError("cannot fit Structure2Vec on an empty network")
        if node_labels is None:
            raise EmbeddingError("Structure2Vec is supervised and requires node_labels")

        nodes, features = node_structural_features(network)
        adjacency = self._normalized_adjacency(network, nodes)
        labels = np.array([float(node_labels.get(node, 0)) for node in nodes])
        weights = self._sample_weights(labels)

        params = self._initialize(features.shape[1])
        for _ in range(self.config.epochs):
            loss = self._gradient_step(params, features, adjacency, labels, weights)
            self.loss_history.append(loss)

        final_embeddings, _ = self._forward(params, features, adjacency)
        self._embeddings = EmbeddingSet(nodes, final_embeddings[-1], name="structure2vec")
        self._params = params
        return self

    def embeddings(self) -> EmbeddingSet:
        if self._embeddings is None:
            raise EmbeddingError("Structure2Vec has not been fitted")
        return self._embeddings

    @property
    def params(self) -> Dict[str, np.ndarray]:
        """Trained parameter copies (``W1``, ``W2``, ``w``, ``b``).

        Raises :class:`EmbeddingError` before :meth:`fit`.  Returned arrays are
        copies — mutating them does not affect the fitted model.
        """
        if self._params is None:
            raise EmbeddingError("Structure2Vec has not been fitted")
        return {name: value.copy() for name, value in self._params.items()}

    def embed_nodes(self, network: TransactionNetwork, targets: Sequence[str]) -> EmbeddingSet:
        """Exact restricted forward pass: mu^(T) for ``targets`` only.

        Used by the online embedding refresher to re-embed the accounts touched
        by new edges without running the forward pass over the whole network.
        With T = ``propagation_rounds``, a target's mu^(T) depends on mu^(T-k)
        of nodes at distance k — and nodes at distance T only ever contribute
        mu^(0) = 0.  So iterating T uniform rounds over the radius-T ball, with
        full aggregation rows for nodes at distance <= T-1 and no rows for the
        distance-T boundary, reproduces the full-network mu^(T) of every target
        exactly (up to floating-point summation order in the sparse product).

        The ball is expanded deterministically (sorted neighbour order) so the
        result is reproducible for a given network and target sequence.
        """
        if self._params is None:
            raise EmbeddingError("Structure2Vec has not been fitted")
        target_list = list(dict.fromkeys(targets))
        if not target_list:
            raise EmbeddingError("embed_nodes requires at least one target node")
        for node in target_list:
            if node not in network:
                raise EmbeddingError(f"target node {node!r} is not in the network")

        rounds = self.config.propagation_rounds
        distance: Dict[str, int] = {node: 0 for node in target_list}
        order: List[str] = list(target_list)
        frontier: List[str] = list(target_list)
        for depth in range(1, rounds + 1):
            next_frontier: List[str] = []
            for node in frontier:
                for neighbor in sorted(network.neighbors(node)):
                    if neighbor not in distance:
                        distance[neighbor] = depth
                        order.append(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier

        ball, features = node_structural_features(network, nodes=order)
        index = {node: i for i, node in enumerate(ball)}
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for node in ball:
            if distance[node] >= rounds:
                # Boundary nodes only contribute mu^(0) = 0 to the targets;
                # their own aggregation rows are never consumed.
                continue
            neighbors = network.neighbors(node)
            if not neighbors:
                continue
            total = sum(neighbors.values())
            for neighbor, weight in neighbors.items():
                rows.append(index[node])
                cols.append(index[neighbor])
                vals.append(weight / total)
        adjacency = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(len(ball), len(ball)), dtype=np.float64
        )
        activations, _ = self._forward(self._params, features, adjacency)
        final = activations[-1]
        vectors = np.array([final[index[node]] for node in target_list])
        return EmbeddingSet(target_list, vectors, name="structure2vec")

    # ------------------------------------------------------------------
    def _initialize(self, num_features: int) -> Dict[str, np.ndarray]:
        dim = self.config.dimension
        scale = 1.0 / np.sqrt(max(num_features, dim))
        return {
            "W1": self._rng.normal(0.0, scale, size=(dim, num_features)),
            "W2": self._rng.normal(0.0, scale, size=(dim, dim)),
            "w": self._rng.normal(0.0, scale, size=dim),
            "b": np.zeros(1),
        }

    def _normalized_adjacency(
        self, network: TransactionNetwork, nodes: List[str]
    ) -> sparse.csr_matrix:
        """Row-normalised undirected adjacency (mean aggregation operator)."""
        index = {node: i for i, node in enumerate(nodes)}
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for node in nodes:
            neighbors = network.neighbors(node)
            if not neighbors:
                continue
            total = sum(neighbors.values())
            for neighbor, weight in neighbors.items():
                rows.append(index[node])
                cols.append(index[neighbor])
                vals.append(weight / total)
        return sparse.csr_matrix(
            (vals, (rows, cols)), shape=(len(nodes), len(nodes)), dtype=np.float64
        )

    def _sample_weights(self, labels: np.ndarray) -> np.ndarray:
        if not self.config.balance_classes:
            return np.ones_like(labels)
        positives = labels.sum()
        negatives = labels.shape[0] - positives
        if positives == 0 or negatives == 0:
            return np.ones_like(labels)
        positive_weight = negatives / positives
        return np.where(labels > 0.5, positive_weight, 1.0)

    def _forward(
        self,
        params: Dict[str, np.ndarray],
        features: np.ndarray,
        adjacency: sparse.csr_matrix,
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Run mean-field propagation; returns per-round (activations, pre-activations)."""
        num_nodes = features.shape[0]
        mu = np.zeros((num_nodes, self.config.dimension))
        activations: List[np.ndarray] = []
        pre_activations: List[np.ndarray] = []
        base = features @ params["W1"].T
        for _ in range(self.config.propagation_rounds):
            aggregated = adjacency @ mu
            z = base + aggregated @ params["W2"].T
            mu = np.maximum(z, 0.0)
            pre_activations.append(z)
            activations.append(mu)
        return activations, pre_activations

    def _gradient_step(
        self,
        params: Dict[str, np.ndarray],
        features: np.ndarray,
        adjacency: sparse.csr_matrix,
        labels: np.ndarray,
        weights: np.ndarray,
    ) -> float:
        cfg = self.config
        activations, pre_activations = self._forward(params, features, adjacency)
        final = activations[-1]
        scores = final @ params["w"] + params["b"][0]
        probabilities = 1.0 / (1.0 + np.exp(-np.clip(scores, -30, 30)))
        eps = 1e-10
        loss = -np.mean(
            weights
            * (labels * np.log(probabilities + eps) + (1 - labels) * np.log(1 - probabilities + eps))
        )

        num_nodes = features.shape[0]
        d_score = weights * (probabilities - labels) / num_nodes
        grad_w = final.T @ d_score + cfg.l2 * params["w"]
        grad_b = np.array([d_score.sum()])
        grad_mu = np.outer(d_score, params["w"])

        grad_w1 = cfg.l2 * params["W1"]
        grad_w2 = cfg.l2 * params["W2"]
        adjacency_t = adjacency.T.tocsr()
        for round_index in range(cfg.propagation_rounds - 1, -1, -1):
            d_z = grad_mu * (pre_activations[round_index] > 0.0)
            grad_w1 += d_z.T @ features
            previous = (
                activations[round_index - 1]
                if round_index > 0
                else np.zeros_like(activations[0])
            )
            aggregated_prev = adjacency @ previous
            grad_w2 += d_z.T @ aggregated_prev
            grad_mu = adjacency_t @ (d_z @ params["W2"])

        params["w"] -= cfg.learning_rate * grad_w
        params["b"] -= cfg.learning_rate * grad_b
        params["W1"] -= cfg.learning_rate * grad_w1
        params["W2"] -= cfg.learning_rate * grad_w2
        return float(loss)
