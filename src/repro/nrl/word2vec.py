"""Skip-gram with negative sampling (word2vec) on NumPy.

The paper's distributed DeepWalk reimplements word2vec on the KunPeng
parameter-server platform: workers read batches of node sequences, generate
negative samples, pull the relevant embeddings, apply gradient descent and
push the updates back.  This module provides the exact computational core that
both the single-machine :class:`~repro.nrl.deepwalk.DeepWalk` model and the
PS-distributed driver (:mod:`repro.nrl.distributed`) share:

* :class:`Vocabulary` — token/index mapping with unigram counts,
* skip-gram pair generation from linear node sequences,
* a unigram^0.75 negative-sampling table,
* dense mini-batch SGNS updates (in place) and sparse gradient computation
  (for the pull/compute/push cycle of the parameter server).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import EmbeddingError
from repro.nrl.embeddings import EmbeddingSet
from repro.rng import SeedLike, ensure_rng


class Vocabulary:
    """Token vocabulary with occurrence counts."""

    def __init__(self) -> None:
        self._token_index: Dict[str, int] = {}
        self._tokens: List[str] = []
        self._counts: List[int] = []

    def add(self, token: str, count: int = 1) -> int:
        index = self._token_index.get(token)
        if index is None:
            index = len(self._tokens)
            self._token_index[token] = index
            self._tokens.append(token)
            self._counts.append(0)
        self._counts[index] += count
        return index

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._token_index

    def index(self, token: str) -> int:
        try:
            return self._token_index[token]
        except KeyError as exc:
            raise EmbeddingError(f"token {token!r} not in vocabulary") from exc

    def token(self, index: int) -> str:
        return self._tokens[index]

    def tokens(self) -> List[str]:
        return list(self._tokens)

    def counts(self) -> np.ndarray:
        return np.array(self._counts, dtype=np.float64)

    def encode(self, sequence: Sequence[str]) -> np.ndarray:
        """Encode a token sequence to indices, skipping unknown tokens."""
        return np.array(
            [self._token_index[t] for t in sequence if t in self._token_index],
            dtype=np.int64,
        )


def build_vocabulary(corpus: Iterable[Sequence[str]], *, min_count: int = 1) -> Vocabulary:
    """Build a vocabulary from a corpus of token sequences."""
    counts: Dict[str, int] = {}
    for sentence in corpus:
        for token in sentence:
            counts[token] = counts.get(token, 0) + 1
    vocabulary = Vocabulary()
    for token, count in counts.items():
        if count >= min_count:
            vocabulary.add(token, count)
    if len(vocabulary) == 0:
        raise EmbeddingError("corpus produced an empty vocabulary")
    return vocabulary


@dataclass
class SkipGramConfig:
    """Hyperparameters of skip-gram with negative sampling.

    ``dimension`` defaults to 32, the paper's best setting (Figure 11).
    """

    dimension: int = 32
    window: int = 5
    negatives: int = 5
    learning_rate: float = 0.025
    min_learning_rate: float = 0.0005
    epochs: int = 2
    batch_size: int = 2048
    min_count: int = 1
    negative_table_size: int = 1_000_000
    seed: int | None = None

    def validate(self) -> None:
        if self.dimension <= 0:
            raise EmbeddingError("dimension must be positive")
        if self.window < 1:
            raise EmbeddingError("window must be at least 1")
        if self.negatives < 1:
            raise EmbeddingError("negatives must be at least 1")
        if self.learning_rate <= 0:
            raise EmbeddingError("learning_rate must be positive")
        if self.epochs < 1:
            raise EmbeddingError("epochs must be at least 1")
        if self.batch_size < 1:
            raise EmbeddingError("batch_size must be at least 1")


def generate_skipgram_pairs(
    encoded_sentences: Iterable[np.ndarray], window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate (center, context) index pairs from encoded sentences.

    Every ordered pair of tokens at distance ``1..window`` inside a sentence
    becomes a training pair, in both directions — the standard skip-gram
    context definition.
    """
    centers: List[np.ndarray] = []
    contexts: List[np.ndarray] = []
    for sentence in encoded_sentences:
        n = sentence.shape[0]
        if n < 2:
            continue
        for offset in range(1, min(window, n - 1) + 1):
            left = sentence[:-offset]
            right = sentence[offset:]
            centers.append(left)
            contexts.append(right)
            centers.append(right)
            contexts.append(left)
    if not centers:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(centers), np.concatenate(contexts)


def generate_skipgram_pairs_batch(
    encoded_batch: np.ndarray, window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Skip-gram pairs from a padded ``(batch, walk_length)`` index matrix.

    Entries ``< 0`` are padding (terminated walks or pruned tokens) and never
    pair.  Rows must be compacted (all valid entries before any padding) so
    that offsets measure distance in the pruned sequence, matching
    :func:`generate_skipgram_pairs` on individually encoded sentences.
    """
    centers: List[np.ndarray] = []
    contexts: List[np.ndarray] = []
    length = encoded_batch.shape[1] if encoded_batch.ndim == 2 else 0
    for offset in range(1, min(window, length - 1) + 1):
        left = encoded_batch[:, :-offset].reshape(-1)
        right = encoded_batch[:, offset:].reshape(-1)
        mask = (left >= 0) & (right >= 0)
        if not mask.any():
            continue
        left, right = left[mask], right[mask]
        centers.append(left)
        contexts.append(right)
        centers.append(right)
        contexts.append(left)
    if not centers:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(centers), np.concatenate(contexts)


def encode_walk_batch(batch: np.ndarray, node_to_token: np.ndarray) -> np.ndarray:
    """Map a padded walk-index batch through ``node_to_token`` and compact rows.

    ``node_to_token`` maps network node index -> vocabulary index (``-1`` for
    pruned nodes).  Pruned entries are squeezed out of each row (valid tokens
    shift left, padding fills the tail), mirroring how
    :meth:`Vocabulary.encode` drops unknown tokens before pairing.
    """
    mapped = np.where(batch >= 0, node_to_token[np.maximum(batch, 0)], -1)
    invalid = mapped < 0
    if not invalid.any():
        return mapped
    order = np.argsort(invalid, axis=1, kind="stable")
    return np.take_along_axis(mapped, order, axis=1)


def build_negative_table(counts: np.ndarray, table_size: int, power: float = 0.75) -> np.ndarray:
    """Unigram^power negative-sampling table (index array of length ``table_size``)."""
    weights = np.power(np.maximum(counts, 1e-12), power)
    probabilities = weights / weights.sum()
    cumulative = np.cumsum(probabilities)
    positions = (np.arange(table_size) + 0.5) / table_size
    return np.searchsorted(cumulative, positions).astype(np.int64)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def sgns_batch_update(
    w_in: np.ndarray,
    w_out: np.ndarray,
    centers: np.ndarray,
    contexts: np.ndarray,
    negatives: np.ndarray,
    learning_rate: float,
) -> float:
    """One in-place SGNS mini-batch update; returns the mean batch loss."""
    v_in = w_in[centers]  # (B, d)
    v_pos = w_out[contexts]  # (B, d)
    v_neg = w_out[negatives]  # (B, K, d)

    pos_score = _sigmoid(np.einsum("bd,bd->b", v_in, v_pos))
    neg_score = _sigmoid(np.einsum("bkd,bd->bk", v_neg, v_in))

    g_pos = (pos_score - 1.0)[:, None]  # (B, 1)
    grad_in = g_pos * v_pos + np.einsum("bk,bkd->bd", neg_score, v_neg)
    grad_pos = g_pos * v_in
    grad_neg = neg_score[:, :, None] * v_in[:, None, :]

    dimension = w_in.shape[1]
    np.add.at(w_in, centers, -learning_rate * grad_in)
    np.add.at(w_out, contexts, -learning_rate * grad_pos)
    np.add.at(w_out, negatives.reshape(-1), -learning_rate * grad_neg.reshape(-1, dimension))

    eps = 1e-10
    loss = -np.mean(np.log(pos_score + eps)) - np.mean(
        np.sum(np.log(1.0 - neg_score + eps), axis=1)
    )
    return float(loss)


@dataclass
class SparseBatch:
    """One minibatch expressed against *compacted* row sets.

    ``rows_in``/``rows_out`` are the unique global rows a batch touches (sorted
    ascending); the index arrays address those compacted sets.  This is exactly
    the unit of work of the paper's pull/compute/push cycle: a worker pulls
    ``rows_in`` of ``w_in`` and ``rows_out`` of ``w_out``, computes gradients
    locally and pushes one gradient row back per pulled row.
    """

    rows_in: np.ndarray  # (U_in,) unique center rows
    rows_out: np.ndarray  # (U_out,) unique context ∪ negative rows
    center_idx: np.ndarray  # (B,) indices into rows_in
    context_idx: np.ndarray  # (B,) indices into rows_out
    negative_idx: np.ndarray  # (B, K) indices into rows_out

    @classmethod
    def from_pairs(
        cls, centers: np.ndarray, contexts: np.ndarray, negatives: np.ndarray
    ) -> "SparseBatch":
        rows_in, center_idx = np.unique(centers, return_inverse=True)
        out_rows = np.concatenate([contexts, negatives.reshape(-1)])
        rows_out, out_idx = np.unique(out_rows, return_inverse=True)
        return cls(
            rows_in=rows_in,
            rows_out=rows_out,
            center_idx=center_idx,
            context_idx=out_idx[: contexts.shape[0]],
            negative_idx=out_idx[contexts.shape[0] :].reshape(negatives.shape),
        )

    @property
    def num_rows(self) -> int:
        """Unique embedding rows the batch pulls (and pushes)."""
        return int(self.rows_in.shape[0] + self.rows_out.shape[0])


def sgns_sparse_step(
    v_in: np.ndarray,
    v_out: np.ndarray,
    batch: SparseBatch,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """SGNS gradients over pulled row blocks, fully vectorised.

    ``v_in``/``v_out`` are the pulled ``(U_in, d)``/``(U_out, d)`` row blocks
    matching ``batch.rows_in``/``batch.rows_out``.  Returns dense gradient
    blocks of the same shapes plus the mean batch loss; the caller pushes the
    blocks back row-sparsely.
    """
    c_in = v_in[batch.center_idx]  # (B, d)
    c_pos = v_out[batch.context_idx]  # (B, d)
    c_neg = v_out[batch.negative_idx]  # (B, K, d)

    pos_score = _sigmoid(np.einsum("bd,bd->b", c_in, c_pos))
    neg_score = _sigmoid(np.einsum("bkd,bd->bk", c_neg, c_in))

    g_pos = (pos_score - 1.0)[:, None]
    grad_in_rows = g_pos * c_pos + np.einsum("bk,bkd->bd", neg_score, c_neg)
    grad_pos_rows = g_pos * c_in
    grad_neg_rows = neg_score[:, :, None] * c_in[:, None, :]

    dimension = v_in.shape[1]
    grad_in = np.zeros_like(v_in)
    grad_out = np.zeros_like(v_out)
    np.add.at(grad_in, batch.center_idx, grad_in_rows)
    np.add.at(grad_out, batch.context_idx, grad_pos_rows)
    np.add.at(
        grad_out, batch.negative_idx.reshape(-1), grad_neg_rows.reshape(-1, dimension)
    )

    eps = 1e-10
    loss = -np.mean(np.log(pos_score + eps)) - np.mean(
        np.sum(np.log(1.0 - neg_score + eps), axis=1)
    )
    return grad_in, grad_out, float(loss)


def sgns_sparse_gradients(
    w_in: np.ndarray,
    w_out: np.ndarray,
    centers: np.ndarray,
    contexts: np.ndarray,
    negatives: np.ndarray,
) -> Tuple[Dict[int, np.ndarray], Dict[int, np.ndarray], float]:
    """Compute sparse SGNS gradients without applying them.

    Returns ``(grads_in, grads_out, loss)`` where each gradient dict maps a row
    index to its accumulated gradient.  This is the worker-side computation of
    the parameter-server training loop: the worker pulls the needed rows,
    computes these gradients and pushes them back to the servers.  The heavy
    lifting happens in :func:`sgns_sparse_step` on compacted row blocks.
    """
    batch = SparseBatch.from_pairs(centers, contexts, negatives)
    grad_in, grad_out, loss = sgns_sparse_step(w_in[batch.rows_in], w_out[batch.rows_out], batch)
    grads_in = {int(row): grad_in[i] for i, row in enumerate(batch.rows_in)}
    grads_out = {int(row): grad_out[i] for i, row in enumerate(batch.rows_out)}
    return grads_in, grads_out, loss


class SkipGramTrainer:
    """Single-process SGNS trainer over a corpus of node sequences."""

    def __init__(self, config: SkipGramConfig | None = None, *, rng: SeedLike = None):
        self.config = config or SkipGramConfig()
        self.config.validate()
        self._rng = ensure_rng(self.config.seed if rng is None else rng)
        self.vocabulary: Vocabulary | None = None
        self.w_in: np.ndarray | None = None
        self.w_out: np.ndarray | None = None
        self.loss_history: List[float] = []

    # ------------------------------------------------------------------
    def initialize(self, vocabulary: Vocabulary) -> None:
        """Initialise parameter matrices for ``vocabulary``."""
        self.vocabulary = vocabulary
        size, dim = len(vocabulary), self.config.dimension
        self.w_in = (self._rng.random((size, dim)) - 0.5) / dim
        self.w_out = np.zeros((size, dim), dtype=np.float64)

    def fit(self, corpus: Sequence[Sequence[str]]) -> EmbeddingSet:
        """Train on ``corpus`` and return the learned input embeddings."""
        vocabulary = build_vocabulary(corpus, min_count=self.config.min_count)
        self.initialize(vocabulary)
        encoded = [vocabulary.encode(sentence) for sentence in corpus]
        centers, contexts = generate_skipgram_pairs(encoded, self.config.window)
        if centers.size == 0:
            raise EmbeddingError("corpus produced no skip-gram pairs")
        table = build_negative_table(vocabulary.counts(), self.config.negative_table_size)
        self._train_pairs(centers, contexts, table)
        return self.embeddings()

    def _train_pairs(
        self, centers: np.ndarray, contexts: np.ndarray, table: np.ndarray
    ) -> None:
        assert self.w_in is not None and self.w_out is not None
        cfg = self.config
        num_pairs = centers.shape[0]
        total_batches = max(1, int(np.ceil(num_pairs / cfg.batch_size))) * cfg.epochs
        batch_counter = 0
        for _ in range(cfg.epochs):
            order = self._rng.permutation(num_pairs)
            for start in range(0, num_pairs, cfg.batch_size):
                batch = order[start : start + cfg.batch_size]
                progress = batch_counter / total_batches
                learning_rate = max(
                    cfg.min_learning_rate,
                    cfg.learning_rate * (1.0 - progress),
                )
                negatives = table[
                    self._rng.integers(0, table.shape[0], size=(batch.shape[0], cfg.negatives))
                ]
                loss = sgns_batch_update(
                    self.w_in,
                    self.w_out,
                    centers[batch],
                    contexts[batch],
                    negatives,
                    learning_rate,
                )
                self.loss_history.append(loss)
                batch_counter += 1

    # ------------------------------------------------------------------
    def embeddings(self) -> EmbeddingSet:
        if self.vocabulary is None or self.w_in is None:
            raise EmbeddingError("SkipGramTrainer has not been fitted")
        return EmbeddingSet(self.vocabulary.tokens(), self.w_in.copy(), name="skipgram")
