"""Deterministic random-number handling.

Every stochastic component in the reproduction (data generation, random walks,
negative sampling, tree subsampling, failure injection) accepts either an
integer seed or a ``numpy.random.Generator``.  Centralising the coercion keeps
experiments reproducible end to end: a single experiment seed fans out into
independent, stable child streams per component.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a freshly seeded generator, an ``int`` a deterministic one,
    and an existing generator is passed through untouched.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_child(rng: np.random.Generator, *, salt: int = 0) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    The child stream is a deterministic function of the parent's state and the
    ``salt``, so components that each take their own child remain reproducible
    regardless of the order in which they later consume randomness.
    """
    seed = int(rng.integers(0, 2**63 - 1)) ^ (salt * 0x9E3779B97F4A7C15 % 2**63)
    return np.random.default_rng(seed)


def derive_seed(base_seed: Optional[int], component: str) -> int:
    """Derive a stable integer seed for a named component.

    Uses a small FNV-1a hash of the component name mixed with the base seed so
    that, e.g., the DeepWalk walker and the GBDT subsampler never share a
    stream even when the experiment uses one global seed.
    """
    h = 1469598103934665603
    for ch in component.encode("utf-8"):
        h ^= ch
        h = (h * 1099511628211) % 2**64
    if base_seed is None:
        base_seed = 0
    return (h ^ (base_seed * 0x9E3779B97F4A7C15)) % 2**31
