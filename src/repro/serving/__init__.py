"""Online real-time prediction: the Model Server and the Alipay front end.

Once offline training finishes, the learned model files, per-user basic
features and node embeddings are uploaded (to the model registry and to
Ali-HBase).  When a user initiates a transfer in the Alipay app, the Alipay
server calls the Model Server (MS); the MS reads the latest per-user rows from
Ali-HBase, assembles the same feature vector the offline trainer used, scores
the transaction within milliseconds, and — if the fraud probability exceeds
the alert threshold — tells the Alipay server to interrupt the on-going
transaction and notify the transferor (paper Figure 5).

Around that scoring core sits the serving *runtime* (see
``docs/ARCHITECTURE.md``): consistent-hash account sharding
(:mod:`repro.serving.router`), deadline-bounded request coalescing
(:mod:`repro.serving.coalescer`), registry-driven hot model rotation with
canaries and shadow scoring (:mod:`repro.serving.rotation`), and bounded
admission control that sheds overload to the rule-based model
(:mod:`repro.serving.admission`).
"""

from repro.serving.latency import LatencyTracker, LatencyReport
from repro.serving.feature_source import HBaseFeatureSource
from repro.serving.model_server import (
    ModelServer,
    ModelServerConfig,
    PredictionResponse,
    ServingModel,
    ShadowReport,
    TransactionRequest,
)
from repro.serving.router import RoundRobinRouter, ServingRouter, fleet_cache_stats
from repro.serving.coalescer import CoalescerConfig, RequestCoalescer
from repro.serving.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    RuleBasedFallback,
    default_fraud_rules,
)
from repro.serving.streaming import StreamingFeatureUpdater
from repro.serving.embedding_refresh import (
    EmbeddingRefreshConfig,
    EmbeddingRefreshQueue,
    EmbeddingRefresher,
    RefreshReport,
)
from repro.serving.async_server import AsyncServingFrontEnd
from repro.serving.alipay import (
    AlipayServer,
    ServedTransaction,
    ServingReport,
    TransactionOutcome,
)
from repro.serving.rotation import FleetController, RolloutReport

__all__ = [
    "StreamingFeatureUpdater",
    "EmbeddingRefreshConfig",
    "EmbeddingRefreshQueue",
    "EmbeddingRefresher",
    "RefreshReport",
    "LatencyTracker",
    "LatencyReport",
    "HBaseFeatureSource",
    "ModelServer",
    "ModelServerConfig",
    "PredictionResponse",
    "ServingModel",
    "ShadowReport",
    "TransactionRequest",
    "RoundRobinRouter",
    "ServingRouter",
    "fleet_cache_stats",
    "CoalescerConfig",
    "RequestCoalescer",
    "AsyncServingFrontEnd",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "RuleBasedFallback",
    "default_fraud_rules",
    "AlipayServer",
    "ServingReport",
    "TransactionOutcome",
    "ServedTransaction",
    "FleetController",
    "RolloutReport",
]
