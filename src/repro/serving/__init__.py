"""Online real-time prediction: the Model Server and the Alipay front end.

Once offline training finishes, the learned model files, per-user basic
features and node embeddings are uploaded (to the model registry and to
Ali-HBase).  When a user initiates a transfer in the Alipay app, the Alipay
server calls the Model Server (MS); the MS reads the latest per-user rows from
Ali-HBase, assembles the same feature vector the offline trainer used, scores
the transaction within milliseconds, and — if the fraud probability exceeds
the alert threshold — tells the Alipay server to interrupt the on-going
transaction and notify the transferor (paper Figure 5).
"""

from repro.serving.latency import LatencyTracker, LatencyReport
from repro.serving.feature_source import HBaseFeatureSource
from repro.serving.model_server import (
    ModelServer,
    ModelServerConfig,
    PredictionResponse,
    ServingModel,
    TransactionRequest,
)
from repro.serving.streaming import StreamingFeatureUpdater
from repro.serving.alipay import AlipayServer, TransactionOutcome, ServedTransaction

__all__ = [
    "StreamingFeatureUpdater",
    "LatencyTracker",
    "LatencyReport",
    "HBaseFeatureSource",
    "ModelServer",
    "ModelServerConfig",
    "PredictionResponse",
    "ServingModel",
    "TransactionRequest",
    "AlipayServer",
    "TransactionOutcome",
    "ServedTransaction",
]
