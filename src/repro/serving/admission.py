"""Admission control: bounded queues and shed-to-rules overload behaviour.

The paper's serving requirement is an answer for *every* transfer within tens
of milliseconds.  When arrivals exceed the fleet's capacity, queueing
unboundedly breaks that promise for everyone; dropping requests breaks it
outright.  The production-shaped behaviour is *load shedding with graceful
degradation*: past a bounded backlog, new arrivals skip the ML path (HBase
reads + plan execution + GBDT) and are answered immediately by the cheap
rule-based model of :mod:`repro.models.rules` — the explicit IF/THEN rule set
a risk-policy team maintains — evaluated on request-local fields only, so it
needs no feature-store round trip at all.

Every request is still answered (nothing is dropped on the floor); the
:class:`~repro.serving.alipay.ServingReport` reports the fraction degraded to
rules and the peak backlog, which the overload tests bound.

The queue is modelled in simulated time: arrivals carry their event-clock
``now_ms`` (the replay's arrival process) and the backlog drains at the
configured service capacity.  That keeps overload tests deterministic —
wall-clock speed of the test host never changes the admission decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

import numpy as np

from repro.exceptions import ServingError
from repro.models.rules import Condition, Rule, RuleSet
from repro.serving.model_server import PredictionResponse, TransactionRequest


class AdmissionDecision(str, Enum):
    """What the controller decided for one arrival."""

    ADMIT = "admit"  # queue for the full ML scoring path
    DEGRADE = "degrade"  # answer now from the rule-based fallback


@dataclass(frozen=True)
class AdmissionConfig:
    """Capacity model and backlog bounds of the admission controller.

    ``capacity_rps`` is the fleet's sustainable ML-path throughput (requests
    per second of simulated time); ``max_queue_depth`` is the backlog at
    which shedding starts, and ``resume_queue_depth`` the low watermark at
    which it stops (hysteresis, so the controller does not flap around the
    threshold request-by-request).
    """

    capacity_rps: float
    max_queue_depth: int = 64
    resume_queue_depth: Optional[int] = None

    def validate(self) -> None:
        """Reject non-positive capacity and inconsistent queue watermarks."""
        if self.capacity_rps <= 0:
            raise ServingError("capacity_rps must be positive")
        if self.max_queue_depth < 1:
            raise ServingError("max_queue_depth must be at least 1")
        resume = self.effective_resume_depth
        if not 0 <= resume <= self.max_queue_depth:
            raise ServingError("resume_queue_depth must be in [0, max_queue_depth]")

    @property
    def effective_resume_depth(self) -> int:
        """The shedding low watermark (defaults to half the queue bound)."""
        if self.resume_queue_depth is not None:
            return self.resume_queue_depth
        return self.max_queue_depth // 2


class AdmissionController:
    """Bounded-backlog admission with shed-to-rules hysteresis.

    The backlog is a fluid queue: each arrival first drains
    ``capacity_rps × elapsed`` of queued work, then either joins the queue
    (ADMIT) or — when the queue is at ``max_queue_depth``, and until it falls
    back to ``resume_queue_depth`` — is diverted to the fallback (DEGRADE).
    """

    def __init__(self, config: AdmissionConfig) -> None:
        config.validate()
        self.config = config
        self._backlog = 0.0
        self._last_ms: Optional[float] = None
        self._shedding = False
        self.admitted = 0
        self.degraded = 0
        self.peak_queue_depth = 0.0
        self.shed_intervals = 0

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> float:
        """Current modelled backlog, in requests."""
        return self._backlog

    @property
    def is_shedding(self) -> bool:
        """True while the controller is diverting arrivals to the fallback."""
        return self._shedding

    def on_arrival(self, now_ms: float) -> AdmissionDecision:
        """Decide one arrival at simulated time ``now_ms`` (non-decreasing)."""
        if self._last_ms is not None:
            if now_ms < self._last_ms:
                raise ServingError("admission clock must be non-decreasing")
            drained = self.config.capacity_rps * (now_ms - self._last_ms) / 1000.0
            self._backlog = max(0.0, self._backlog - drained)
        self._last_ms = now_ms
        if self._shedding and self._backlog <= self.config.effective_resume_depth:
            self._shedding = False
        if not self._shedding and self._backlog + 1 > self.config.max_queue_depth:
            self._shedding = True
            self.shed_intervals += 1
        if self._shedding:
            self.degraded += 1
            return AdmissionDecision.DEGRADE
        self._backlog += 1.0
        self.admitted += 1
        self.peak_queue_depth = max(self.peak_queue_depth, self._backlog)
        return AdmissionDecision.ADMIT

    def stats(self) -> Dict[str, float]:
        """Counters for the serving report: admissions, sheds, peak backlog."""
        total = self.admitted + self.degraded
        return {
            "admitted": float(self.admitted),
            "degraded": float(self.degraded),
            "degraded_fraction": self.degraded / total if total else 0.0,
            "peak_queue_depth": self.peak_queue_depth,
            "shed_intervals": float(self.shed_intervals),
        }


#: Feature order of the request-local vector the fallback rules see.
FALLBACK_FEATURE_NAMES = (
    "amount",
    "is_night",
    "is_new_device",
    "ip_risk_score",
    "payer_recent_txn_count",
)


def default_fraud_rules() -> RuleSet:
    """A hand-maintained high-precision rule set over request-local fields.

    Thresholds follow the synthetic world's generator: legitimate transfers
    draw ``ip_risk_score`` from Beta(1.2, 12) (median ≈ 0.07) while fraud
    draws from Beta(4, 4) (median 0.5), and fraud amounts sit in the upper
    tail of the lognormal amount distribution.  The rules trade recall for
    precision — under overload it is better to miss some fraud than to
    interrupt legitimate transfers wholesale.
    """
    amount, night, new_device, ip_risk, _ = range(len(FALLBACK_FEATURE_NAMES))
    return RuleSet(
        rules=[
            Rule([Condition(ip_risk, ">", 0.6), Condition(new_device, ">", 0.5)], 0.95),
            Rule([Condition(ip_risk, ">", 0.45), Condition(amount, ">", 500.0)], 0.85),
            Rule([Condition(amount, ">", 2000.0), Condition(night, ">", 0.5)], 0.75),
            Rule([Condition(ip_risk, ">", 0.8)], 0.7),
        ],
        default_value=0.05,
    )


class RuleBasedFallback:
    """Scores shed requests from request-local fields only — no HBase reads.

    Wraps a :class:`~repro.models.rules.RuleSet` (by default
    :func:`default_fraud_rules`; pass rules extracted from a fitted tree via
    :func:`~repro.models.rules.extract_rules` to keep the fallback aligned
    with a trained policy) and answers in the same
    :class:`~repro.serving.model_server.PredictionResponse` shape as the ML
    path, tagged with its own model version so reports can tell the paths
    apart.
    """

    def __init__(
        self,
        rules: Optional[RuleSet] = None,
        *,
        threshold: float = 0.5,
        version: str = "rules-fallback",
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ServingError("threshold must be in [0, 1]")
        self.rules = rules or default_fraud_rules()
        self.threshold = float(threshold)
        self.version = version
        self.requests_served = 0

    @staticmethod
    def request_vector(request: TransactionRequest) -> np.ndarray:
        """The request's :data:`FALLBACK_FEATURE_NAMES` vector."""
        from repro.features.aggregation import is_night_hour

        return np.array(
            [
                request.amount,
                1.0 if is_night_hour(request.hour) else 0.0,
                1.0 if request.is_new_device else 0.0,
                request.ip_risk_score,
                float(request.payer_recent_txn_count),
            ],
            dtype=np.float64,
        )

    def respond(self, request: TransactionRequest) -> PredictionResponse:
        """Answer one shed request immediately from the rule set."""
        probability = float(self.rules.predict_row(self.request_vector(request)))
        self.requests_served += 1
        return PredictionResponse(
            transaction_id=request.transaction_id,
            fraud_probability=probability,
            is_fraud_alert=probability >= self.threshold,
            threshold=self.threshold,
            model_version=self.version,
            latency_ms=0.0,
        )
