"""Alipay-server simulation: the front end that calls the Model Server.

When a user transfers money in the Alipay app, the transfer request reaches
the Alipay server, which immediately asks the Model Server for a fraud check.
If the MS raises an alert, the on-going transaction is interrupted and the
transferor is notified; otherwise the transfer proceeds.  The simulator
replays transaction streams through that flow and records outcomes, so the
serving benchmark and the end-to-end example can measure both detection
quality and latency on the online path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

from repro.datagen.schema import Transaction
from repro.exceptions import ServingError
from repro.logging_utils import get_logger
from repro.serving.model_server import ModelServer, PredictionResponse, TransactionRequest

logger = get_logger("serving.alipay")


class TransactionOutcome(str, Enum):
    """What happened to a transfer after the fraud check."""

    APPROVED = "approved"
    INTERRUPTED = "interrupted"


@dataclass
class ServedTransaction:
    """One transaction processed by the Alipay server."""

    request: TransactionRequest
    response: PredictionResponse
    outcome: TransactionOutcome
    was_fraud: Optional[bool] = None


@dataclass
class ServingReport:
    """Aggregate outcomes of a replayed transaction stream."""

    total: int
    interrupted: int
    approved: int
    true_alerts: int
    false_alerts: int
    missed_frauds: int

    @property
    def alert_precision(self) -> float:
        alerts = self.true_alerts + self.false_alerts
        return self.true_alerts / alerts if alerts else 0.0

    @property
    def alert_recall(self) -> float:
        frauds = self.true_alerts + self.missed_frauds
        return self.true_alerts / frauds if frauds else 0.0


class AlipayServer:
    """Front-end simulator wired to one (or more) Model Server instances."""

    def __init__(self, model_servers: Sequence[ModelServer] | ModelServer):
        if isinstance(model_servers, ModelServer):
            model_servers = [model_servers]
        if not model_servers:
            raise ServingError("AlipayServer needs at least one Model Server")
        self._model_servers: List[ModelServer] = list(model_servers)
        self._next_server = 0
        self.served: List[ServedTransaction] = []
        self.notifications: List[str] = []

    # ------------------------------------------------------------------
    def _pick_server(self) -> ModelServer:
        """Round-robin load balancing across the distributed MS fleet."""
        server = self._model_servers[self._next_server % len(self._model_servers)]
        self._next_server += 1
        return server

    def process(self, request: TransactionRequest, *, was_fraud: Optional[bool] = None) -> ServedTransaction:
        """Run one transfer through the fraud check."""
        server = self._pick_server()
        response = server.predict(request)
        if response.is_fraud_alert:
            outcome = TransactionOutcome.INTERRUPTED
            self.notifications.append(
                f"transaction {request.transaction_id} interrupted: fraud probability "
                f"{response.fraud_probability:.2%}; transferor {request.payer_id} notified"
            )
        else:
            outcome = TransactionOutcome.APPROVED
        served = ServedTransaction(
            request=request, response=response, outcome=outcome, was_fraud=was_fraud
        )
        self.served.append(served)
        return served

    def replay_transactions(self, transactions: Iterable[Transaction]) -> ServingReport:
        """Replay labelled transactions (e.g. a test day) through the online path."""
        for transaction in transactions:
            request = TransactionRequest.from_transaction(transaction)
            self.process(request, was_fraud=transaction.is_fraud)
        return self.report()

    # ------------------------------------------------------------------
    def report(self) -> ServingReport:
        total = len(self.served)
        interrupted = sum(1 for s in self.served if s.outcome is TransactionOutcome.INTERRUPTED)
        labelled = [s for s in self.served if s.was_fraud is not None]
        true_alerts = sum(
            1 for s in labelled if s.outcome is TransactionOutcome.INTERRUPTED and s.was_fraud
        )
        false_alerts = sum(
            1 for s in labelled if s.outcome is TransactionOutcome.INTERRUPTED and not s.was_fraud
        )
        missed = sum(
            1 for s in labelled if s.outcome is TransactionOutcome.APPROVED and s.was_fraud
        )
        return ServingReport(
            total=total,
            interrupted=interrupted,
            approved=total - interrupted,
            true_alerts=true_alerts,
            false_alerts=false_alerts,
            missed_frauds=missed,
        )

    def latency_report(self) -> Dict[str, float]:
        """Combined latency summary across the MS fleet."""
        reports = [server.latency.report() for server in self._model_servers]
        total = sum(r.count for r in reports)
        if total == 0:
            return {"count": 0.0, "mean_ms": 0.0, "p99_ms": 0.0}
        mean = sum(r.mean_ms * r.count for r in reports) / total
        return {
            "count": float(total),
            "mean_ms": mean,
            "p99_ms": max(r.p99_ms for r in reports),
        }
