"""Alipay-server simulation: the front end that calls the Model Server.

When a user transfers money in the Alipay app, the transfer request reaches
the Alipay server, which immediately asks the Model Server for a fraud check.
If the MS raises an alert, the on-going transaction is interrupted and the
transferor is notified; otherwise the transfer proceeds.  The simulator
replays transaction streams through that flow and records outcomes, so the
serving benchmark and the end-to-end example can measure both detection
quality and latency on the online path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.datagen.schema import Transaction
from repro.exceptions import ServingError
from repro.features.streaming import event_order
from repro.logging_utils import get_logger
from repro.serving.latency import LatencyTracker
from repro.serving.model_server import ModelServer, PredictionResponse, TransactionRequest
from repro.serving.streaming import StreamingFeatureUpdater

logger = get_logger("serving.alipay")


class TransactionOutcome(str, Enum):
    """What happened to a transfer after the fraud check."""

    APPROVED = "approved"
    INTERRUPTED = "interrupted"


@dataclass
class ServedTransaction:
    """One transaction processed by the Alipay server."""

    request: TransactionRequest
    response: PredictionResponse
    outcome: TransactionOutcome
    was_fraud: Optional[bool] = None


@dataclass
class ServingReport:
    """Aggregate outcomes of a replayed transaction stream."""

    total: int
    interrupted: int
    approved: int
    true_alerts: int
    false_alerts: int
    missed_frauds: int

    @property
    def alert_precision(self) -> float:
        alerts = self.true_alerts + self.false_alerts
        return self.true_alerts / alerts if alerts else 0.0

    @property
    def alert_recall(self) -> float:
        frauds = self.true_alerts + self.missed_frauds
        return self.true_alerts / frauds if frauds else 0.0


class AlipayServer:
    """Front-end simulator wired to one (or more) Model Server instances.

    With a :class:`StreamingFeatureUpdater` attached, every processed
    transaction is ingested into the sliding-window feature engine *after*
    being scored (score-then-ingest: the fraud check sees the account's
    behaviour up to, but excluding, the current transfer) and the touched
    accounts' aggregate rows are written through to Ali-HBase, so the next
    request on either account is served fresh aggregates.
    """

    def __init__(
        self,
        model_servers: Sequence[ModelServer] | ModelServer,
        *,
        feature_updater: Optional[StreamingFeatureUpdater] = None,
    ):
        if isinstance(model_servers, ModelServer):
            model_servers = [model_servers]
        if not model_servers:
            raise ServingError("AlipayServer needs at least one Model Server")
        self._model_servers: List[ModelServer] = list(model_servers)
        self._next_server = 0
        self.feature_updater = feature_updater
        self.served: List[ServedTransaction] = []
        self.notifications: List[str] = []

    # ------------------------------------------------------------------
    def _pick_server(self) -> ModelServer:
        """Round-robin load balancing across the distributed MS fleet."""
        server = self._model_servers[self._next_server % len(self._model_servers)]
        self._next_server += 1
        return server

    def process(self, request: TransactionRequest, *, was_fraud: Optional[bool] = None) -> ServedTransaction:
        """Run one transfer through the fraud check (score, then ingest)."""
        server = self._pick_server()
        response = server.predict(request)
        if self.feature_updater is not None:
            self.feature_updater.observe_request(request)
        return self._record(request, response, was_fraud)

    def _record(
        self,
        request: TransactionRequest,
        response: PredictionResponse,
        was_fraud: Optional[bool],
    ) -> ServedTransaction:
        if response.is_fraud_alert:
            outcome = TransactionOutcome.INTERRUPTED
            self.notifications.append(
                f"transaction {request.transaction_id} interrupted: fraud probability "
                f"{response.fraud_probability:.2%}; transferor {request.payer_id} notified"
            )
        else:
            outcome = TransactionOutcome.APPROVED
        served = ServedTransaction(
            request=request, response=response, outcome=outcome, was_fraud=was_fraud
        )
        self.served.append(served)
        return served

    def process_batch(
        self,
        requests: Sequence[TransactionRequest],
        *,
        was_fraud: Optional[Sequence[Optional[bool]]] = None,
    ) -> List[ServedTransaction]:
        """Run a micro-batch through the fleet's vectorised serving path.

        The batch is split into one contiguous chunk per Model Server (the
        starting server rotates, so repeated batches stay balanced) and each
        chunk is scored with a single :meth:`ModelServer.predict_batch` call.
        Results come back in request order.

        With a feature updater attached, each chunk is ingested *after* it is
        scored, so requests within a chunk see the aggregates as of the start
        of the chunk (micro-batch freshness) while later chunks already see
        the earlier chunks' transactions.
        """
        requests = list(requests)
        if not requests:
            return []
        labels: List[Optional[bool]] = (
            list(was_fraud) if was_fraud is not None else [None] * len(requests)
        )
        if len(labels) != len(requests):
            raise ServingError("was_fraud length does not match the batch")
        num_servers = min(len(self._model_servers), len(requests))
        chunk_bounds = np.linspace(0, len(requests), num_servers + 1).astype(int)
        served: List[ServedTransaction] = []
        for chunk_index in range(num_servers):
            start, stop = int(chunk_bounds[chunk_index]), int(chunk_bounds[chunk_index + 1])
            if start == stop:
                continue
            server = self._pick_server()
            responses = server.predict_batch(requests[start:stop])
            for request, response, label in zip(
                requests[start:stop], responses, labels[start:stop]
            ):
                if self.feature_updater is not None:
                    self.feature_updater.observe_request(request)
                served.append(self._record(request, response, label))
        return served

    def replay_transactions(
        self,
        transactions: Iterable[Transaction],
        *,
        batch_size: Optional[int] = None,
    ) -> ServingReport:
        """Replay labelled transactions as a true event-time stream.

        The input is sorted by event time (day ⊕ hour, ties broken by
        transaction id — a total order), so each transaction is scored against
        the feature state of everything that happened before it, and the
        replayed stream state is independent of the input's arrival order.
        With ``batch_size`` set, requests are micro-batched through
        :meth:`process_batch` (the vectorised fleet path); otherwise each
        transaction is scored with a scalar :meth:`process` call.
        """
        if batch_size is not None and batch_size < 1:
            raise ServingError("batch_size must be at least 1")
        ordered = sorted(transactions, key=event_order)
        if batch_size is None:
            for transaction in ordered:
                request = TransactionRequest.from_transaction(transaction)
                self.process(request, was_fraud=transaction.is_fraud)
            return self.report()
        pending: List[Transaction] = []
        for transaction in ordered:
            pending.append(transaction)
            if len(pending) >= batch_size:
                self._process_transaction_batch(pending)
                pending = []
        if pending:
            self._process_transaction_batch(pending)
        return self.report()

    def _process_transaction_batch(self, transactions: Sequence[Transaction]) -> None:
        self.process_batch(
            [TransactionRequest.from_transaction(t) for t in transactions],
            was_fraud=[t.is_fraud for t in transactions],
        )

    # ------------------------------------------------------------------
    def report(self) -> ServingReport:
        total = len(self.served)
        interrupted = sum(1 for s in self.served if s.outcome is TransactionOutcome.INTERRUPTED)
        labelled = [s for s in self.served if s.was_fraud is not None]
        true_alerts = sum(
            1 for s in labelled if s.outcome is TransactionOutcome.INTERRUPTED and s.was_fraud
        )
        false_alerts = sum(
            1 for s in labelled if s.outcome is TransactionOutcome.INTERRUPTED and not s.was_fraud
        )
        missed = sum(
            1 for s in labelled if s.outcome is TransactionOutcome.APPROVED and s.was_fraud
        )
        return ServingReport(
            total=total,
            interrupted=interrupted,
            approved=total - interrupted,
            true_alerts=true_alerts,
            false_alerts=false_alerts,
            missed_frauds=missed,
        )

    def latency_report(self) -> Dict[str, float]:
        """Combined latency summary across the MS fleet.

        Quantiles are computed over the merged raw samples of every server's
        tracker — taking the max of per-server p99s would overstate the
        fleet p99 whenever server loads differ.
        """
        merged = LatencyTracker.merged_report(
            [server.latency for server in self._model_servers]
        )
        return {
            "count": float(merged.count),
            "mean_ms": merged.mean_ms,
            "p50_ms": merged.p50_ms,
            "p95_ms": merged.p95_ms,
            "p99_ms": merged.p99_ms,
            "sla_violations": float(merged.sla_violations),
        }
