"""Alipay-server simulation: the front end that calls the Model Server.

When a user transfers money in the Alipay app, the transfer request reaches
the Alipay server, which immediately asks the Model Server for a fraud check.
If the MS raises an alert, the on-going transaction is interrupted and the
transferor is notified; otherwise the transfer proceeds.  The simulator
replays transaction streams through that flow and records outcomes, so the
serving benchmark and the end-to-end example can measure both detection
quality and latency on the online path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.datagen.schema import Transaction
from repro.exceptions import ServingError
from repro.features.streaming import event_order
from repro.logging_utils import get_logger
from repro.serving.admission import (
    AdmissionController,
    AdmissionDecision,
    RuleBasedFallback,
)
from repro.serving.coalescer import CoalescerConfig, RequestCoalescer
from repro.serving.latency import LatencyTracker
from repro.serving.model_server import ModelServer, PredictionResponse, TransactionRequest
from repro.serving.streaming import StreamingFeatureUpdater

logger = get_logger("serving.alipay")


class TransactionOutcome(str, Enum):
    """What happened to a transfer after the fraud check."""

    APPROVED = "approved"
    INTERRUPTED = "interrupted"


@dataclass
class ServedTransaction:
    """One transaction processed by the Alipay server.

    ``degraded`` marks requests the admission controller shed to the
    rule-based fallback instead of the full ML scoring path.
    """

    request: TransactionRequest
    response: PredictionResponse
    outcome: TransactionOutcome
    was_fraud: Optional[bool] = None
    degraded: bool = False


@dataclass
class ServingReport:
    """Aggregate outcomes of a replayed transaction stream.

    ``degraded`` counts requests answered by the rule-based fallback under
    overload (still answered — never dropped), and ``peak_queue_depth`` is
    the admission controller's maximum modelled backlog during the replay
    (0.0 when no admission control is attached).

    ``missing_embeddings`` counts (user, embedding-block) reads across the
    fleet that found no stored embedding row at all and were served the
    explicit zero default — cold accounts, observable instead of silently
    indistinguishable from a trained all-zero vector.
    """

    total: int
    interrupted: int
    approved: int
    true_alerts: int
    false_alerts: int
    missed_frauds: int
    degraded: int = 0
    peak_queue_depth: float = 0.0
    missing_embeddings: int = 0

    @property
    def alert_precision(self) -> float:
        """Fraction of raised alerts that were actual fraud."""
        alerts = self.true_alerts + self.false_alerts
        return self.true_alerts / alerts if alerts else 0.0

    @property
    def alert_recall(self) -> float:
        """Fraction of actual fraud that raised an alert."""
        frauds = self.true_alerts + self.missed_frauds
        return self.true_alerts / frauds if frauds else 0.0

    @property
    def shed_to_rules_fraction(self) -> float:
        """Fraction of all requests degraded to the rule-based fallback."""
        return self.degraded / self.total if self.total else 0.0


class AlipayServer:
    """Front-end simulator wired to one (or more) Model Server instances.

    With a :class:`StreamingFeatureUpdater` attached, every processed
    transaction is ingested into the sliding-window feature engine *after*
    being scored (score-then-ingest: the fraud check sees the account's
    behaviour up to, but excluding, the current transfer) and the touched
    accounts' aggregate rows are written through to Ali-HBase, so the next
    request on either account is served fresh aggregates.

    ``router`` selects the fleet policy: ``None`` keeps the legacy
    round-robin balancing, a :class:`~repro.serving.router.ServingRouter`
    shards by payer account so each replica's client-side row cache stays
    hot.  ``admission`` + ``fallback`` enable overload shedding during
    rate-driven replays: past the bounded backlog, arrivals are answered by
    the rule-based fallback instead of queueing unboundedly.

    ``retain_served=False`` keeps only the running outcome counters instead
    of the per-request :class:`ServedTransaction` list (and drops
    notification strings), so sustained-load replays run in O(1) memory
    regardless of stream length.  :meth:`report` is unaffected; ``served``
    and ``notifications`` simply stay empty.
    """

    def __init__(
        self,
        model_servers: Sequence[ModelServer] | ModelServer,
        *,
        feature_updater: Optional[StreamingFeatureUpdater] = None,
        router=None,
        admission: Optional[AdmissionController] = None,
        fallback: Optional[RuleBasedFallback] = None,
        retain_served: bool = True,
    ):
        if isinstance(model_servers, ModelServer):
            model_servers = [model_servers]
        if not model_servers:
            raise ServingError("AlipayServer needs at least one Model Server")
        self._model_servers: List[ModelServer] = list(model_servers)
        self._next_server = 0
        if router is not None and router.num_replicas != len(self._model_servers):
            raise ServingError(
                f"router is sized for {router.num_replicas} replicas, "
                f"fleet has {len(self._model_servers)}"
            )
        self.router = router
        self.admission = admission
        self.fallback = fallback if fallback is not None else (
            RuleBasedFallback() if admission is not None else None
        )
        self.feature_updater = feature_updater
        self.retain_served = retain_served
        self.served: List[ServedTransaction] = []
        self.notifications: List[str] = []
        self._counters = {
            "total": 0,
            "interrupted": 0,
            "true_alerts": 0,
            "false_alerts": 0,
            "missed_frauds": 0,
            "degraded": 0,
        }
        #: Stats of the most recent coalesced replay (None before one runs).
        self.last_coalescer_stats: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    @property
    def model_servers(self) -> List[ModelServer]:
        """The Model Server fleet behind this front end."""
        return list(self._model_servers)

    def _pick_server(self, request: Optional[TransactionRequest] = None) -> ModelServer:
        """One replica for one request: routed by account, else round-robin."""
        if self.router is not None and request is not None:
            return self._model_servers[self.router.route(request.payer_id)]
        server = self._model_servers[self._next_server % len(self._model_servers)]
        self._next_server += 1
        return server

    def process(self, request: TransactionRequest, *, was_fraud: Optional[bool] = None) -> ServedTransaction:
        """Run one transfer through the fraud check (score, then ingest)."""
        server = self._pick_server(request)
        response = server.predict(request)
        if self.feature_updater is not None:
            self.feature_updater.observe_request(request)
        return self._record(request, response, was_fraud)

    def process_degraded(
        self, request: TransactionRequest, *, was_fraud: Optional[bool] = None
    ) -> ServedTransaction:
        """Answer one shed transfer from the rule-based fallback.

        The request is still ingested into the streaming feature engine —
        shedding degrades the *scoring* path, not the feature state the
        post-overload requests will be served from.
        """
        if self.fallback is None:
            raise ServingError("no rule-based fallback configured")
        response = self.fallback.respond(request)
        if self.feature_updater is not None:
            self.feature_updater.observe_request(request)
        return self._record(request, response, was_fraud, degraded=True)

    def _record(
        self,
        request: TransactionRequest,
        response: PredictionResponse,
        was_fraud: Optional[bool],
        *,
        degraded: bool = False,
    ) -> ServedTransaction:
        if response.is_fraud_alert:
            outcome = TransactionOutcome.INTERRUPTED
            if self.retain_served:
                self.notifications.append(
                    f"transaction {request.transaction_id} interrupted: fraud probability "
                    f"{response.fraud_probability:.2%}; transferor {request.payer_id} notified"
                )
        else:
            outcome = TransactionOutcome.APPROVED
        served = ServedTransaction(
            request=request,
            response=response,
            outcome=outcome,
            was_fraud=was_fraud,
            degraded=degraded,
        )
        counters = self._counters
        counters["total"] += 1
        if degraded:
            counters["degraded"] += 1
        alerted = outcome is TransactionOutcome.INTERRUPTED
        if alerted:
            counters["interrupted"] += 1
        if was_fraud is not None:
            if alerted and was_fraud:
                counters["true_alerts"] += 1
            elif alerted:
                counters["false_alerts"] += 1
            elif was_fraud:
                counters["missed_frauds"] += 1
        if self.retain_served:
            self.served.append(served)
        return served

    def process_batch(
        self,
        requests: Sequence[TransactionRequest],
        *,
        was_fraud: Optional[Sequence[Optional[bool]]] = None,
    ) -> List[ServedTransaction]:
        """Run a micro-batch through the fleet's vectorised serving path.

        The batch is split into one contiguous chunk per Model Server (the
        starting server rotates, so repeated batches stay balanced) and each
        chunk is scored with a single :meth:`ModelServer.predict_batch` call.
        Results come back in request order.

        With a feature updater attached, each chunk is ingested *after* it is
        scored, so requests within a chunk see the aggregates as of the start
        of the chunk (micro-batch freshness) while later chunks already see
        the earlier chunks' transactions.
        """
        requests = list(requests)
        if not requests:
            return []
        labels: List[Optional[bool]] = (
            list(was_fraud) if was_fraud is not None else [None] * len(requests)
        )
        if len(labels) != len(requests):
            raise ServingError("was_fraud length does not match the batch")
        if self.router is not None:
            return self._process_batch_routed(requests, labels)
        num_servers = min(len(self._model_servers), len(requests))
        chunk_bounds = np.linspace(0, len(requests), num_servers + 1).astype(int)
        served: List[ServedTransaction] = []
        for chunk_index in range(num_servers):
            start, stop = int(chunk_bounds[chunk_index]), int(chunk_bounds[chunk_index + 1])
            if start == stop:
                continue
            server = self._pick_server()
            responses = server.predict_batch(requests[start:stop])
            for request, response, label in zip(
                requests[start:stop], responses, labels[start:stop]
            ):
                if self.feature_updater is not None:
                    self.feature_updater.observe_request(request)
                served.append(self._record(request, response, label))
        return served

    def _process_batch_routed(
        self,
        requests: List[TransactionRequest],
        labels: List[Optional[bool]],
    ) -> List[ServedTransaction]:
        """Split one micro-batch by the routing policy instead of contiguously.

        Each replica scores its own accounts' sub-batch in one
        ``predict_batch`` call; every sub-batch sees the feature state as of
        the start of the batch (micro-batch freshness, same as the
        round-robin path), and all requests are ingested afterwards in
        request order.  Results come back in request order.
        """
        groups: dict = {}
        for index, request in enumerate(requests):
            groups.setdefault(self.router.route(request.payer_id), []).append(index)
        responses: List[Optional[PredictionResponse]] = [None] * len(requests)
        for replica, indices in groups.items():
            batch_responses = self._model_servers[replica].predict_batch(
                [requests[index] for index in indices]
            )
            for index, response in zip(indices, batch_responses):
                responses[index] = response
        served: List[ServedTransaction] = []
        for request, response, label in zip(requests, responses, labels):
            if self.feature_updater is not None:
                self.feature_updater.observe_request(request)
            served.append(self._record(request, response, label))
        return served

    def replay_transactions(
        self,
        transactions: Iterable[Transaction],
        *,
        batch_size: Optional[int] = None,
        arrival_rate_per_s: Optional[float] = None,
        arrival_times_s: Optional[Iterable[float]] = None,
        coalescer: Optional[CoalescerConfig] = None,
        clock: str = "simulated",
        presorted: bool = False,
    ) -> ServingReport:
        """Replay labelled transactions as a true event-time stream.

        The input is sorted by event time (day ⊕ hour, ties broken by
        transaction id — a total order), so each transaction is scored against
        the feature state of everything that happened before it, and the
        replayed stream state is independent of the input's arrival order.
        With ``batch_size`` set, requests are micro-batched through
        :meth:`process_batch` (the vectorised fleet path); otherwise each
        transaction is scored with a scalar :meth:`process` call.

        ``arrival_rate_per_s`` replays the stream against a simulated arrival
        clock (request *i* arrives at ``i / rate`` seconds): it drives the
        attached :class:`~repro.serving.admission.AdmissionController` (shed
        past-capacity arrivals to the rule-based fallback) and, with a
        :class:`~repro.serving.coalescer.CoalescerConfig`, deadline-bounded
        micro-batching of the admitted requests instead of fixed-size
        batches.  ``coalescer`` and ``batch_size`` are mutually exclusive.

        ``clock`` selects how the arrival clock advances: ``"simulated"``
        (default) steps a deterministic logical clock, ``"wall"`` runs the
        same stream through the asyncio front end
        (:class:`~repro.serving.async_server.AsyncServingFrontEnd`) with real
        sleeps between arrivals and wall-clock flush deadlines — one replay
        entry point for both the deterministic tests and the event-loop
        path.  ``clock="wall"`` requires ``arrival_rate_per_s``; the event
        loop always coalesces, so a missing ``coalescer`` config means the
        default :class:`~repro.serving.coalescer.CoalescerConfig`.

        Streaming inputs: a :class:`~repro.datagen.stream.TransactionStream`
        that declares ``event_time_ordered`` — or any iterable passed with
        ``presorted=True`` — is consumed *lazily*, one event at a time,
        without materializing or re-sorting the stream; that is how
        million-transaction replays stay bounded-memory.  Other inputs keep
        the historical behaviour (materialize, then sort by the canonical
        event order).

        ``arrival_times_s`` replaces the uniform ``i / rate`` arrival clock
        with explicit per-event arrival times in seconds (non-decreasing, one
        per transaction) — this is how the sustained-load harness replays a
        diurnal curve whose instantaneous rate the admission controller must
        ride.  Mutually exclusive with ``arrival_rate_per_s`` and only
        supported under the simulated clock.
        """
        if clock not in ("simulated", "wall"):
            raise ServingError(f"clock must be 'simulated' or 'wall', got {clock!r}")
        if clock == "wall" and arrival_rate_per_s is None:
            raise ServingError("clock='wall' needs arrival_rate_per_s")
        if batch_size is not None and batch_size < 1:
            raise ServingError("batch_size must be at least 1")
        if coalescer is not None and batch_size is not None:
            raise ServingError("pass either batch_size or a coalescer config, not both")
        if arrival_times_s is not None and arrival_rate_per_s is not None:
            raise ServingError(
                "pass either arrival_rate_per_s or arrival_times_s, not both"
            )
        if arrival_times_s is not None and clock == "wall":
            raise ServingError("arrival_times_s requires the simulated clock")
        has_arrival_clock = arrival_rate_per_s is not None or arrival_times_s is not None
        if batch_size is not None and has_arrival_clock:
            raise ServingError(
                "fixed-size batching has no arrival clock; under "
                "an arrival clock use a coalescer config for micro-batching"
            )
        if (coalescer is not None or self.admission is not None) and not has_arrival_clock:
            raise ServingError(
                "coalescing and admission control need an arrival clock; "
                "pass arrival_rate_per_s or arrival_times_s"
            )
        if arrival_rate_per_s is not None and arrival_rate_per_s <= 0:
            raise ServingError("arrival_rate_per_s must be positive")
        ordered = self._event_ordered(transactions, presorted=presorted)
        if clock == "wall":
            return self._replay_wall(ordered, arrival_rate_per_s, coalescer)
        if has_arrival_clock:
            return self._replay_with_clock(
                ordered, arrival_rate_per_s, coalescer, arrival_times_s=arrival_times_s
            )
        if batch_size is None:
            for transaction in ordered:
                request = TransactionRequest.from_transaction(transaction)
                self.process(request, was_fraud=transaction.is_fraud)
            return self.report()
        pending: List[Transaction] = []
        for transaction in ordered:
            pending.append(transaction)
            if len(pending) >= batch_size:
                self._process_transaction_batch(pending)
                pending = []
        if pending:
            self._process_transaction_batch(pending)
        return self.report()

    @staticmethod
    def _event_ordered(
        transactions: Iterable[Transaction], *, presorted: bool
    ) -> Iterable[Transaction]:
        """The replay order: lazy for ordered streams, sorted otherwise."""
        from repro.datagen.stream import TransactionStream

        if isinstance(transactions, TransactionStream):
            if transactions.event_time_ordered:
                return transactions
            return sorted(transactions, key=event_order)
        if presorted:
            return transactions
        return sorted(transactions, key=event_order)

    def _replay_with_clock(
        self,
        ordered: Iterable[Transaction],
        arrival_rate_per_s: Optional[float],
        coalescer_config: Optional[CoalescerConfig],
        *,
        arrival_times_s: Optional[Iterable[float]] = None,
    ) -> ServingReport:
        """Replay under a simulated arrival clock (admission + coalescing)."""
        request_coalescer = (
            RequestCoalescer(self, coalescer_config) if coalescer_config is not None else None
        )
        interval_ms = (
            1000.0 / arrival_rate_per_s if arrival_rate_per_s is not None else None
        )
        times = iter(arrival_times_s) if arrival_times_s is not None else None
        last_now_ms = float("-inf")
        for index, transaction in enumerate(ordered):
            if times is not None:
                try:
                    now_ms = float(next(times)) * 1000.0
                except StopIteration:
                    raise ServingError(
                        "arrival_times_s ran out before the transaction stream"
                    ) from None
                if now_ms < last_now_ms:
                    raise ServingError("arrival_times_s must be non-decreasing")
                last_now_ms = now_ms
            else:
                now_ms = index * interval_ms
            request = TransactionRequest.from_transaction(transaction)
            if self.admission is not None:
                decision = self.admission.on_arrival(now_ms)
                if decision is AdmissionDecision.DEGRADE:
                    self.process_degraded(request, was_fraud=transaction.is_fraud)
                    continue
            if request_coalescer is not None:
                request_coalescer.submit(
                    request, now_ms=now_ms, was_fraud=transaction.is_fraud
                )
            else:
                self.process(request, was_fraud=transaction.is_fraud)
        if request_coalescer is not None:
            request_coalescer.flush()
            self.last_coalescer_stats = request_coalescer.stats()
        return self.report()

    def _replay_wall(
        self,
        ordered: Iterable[Transaction],
        arrival_rate_per_s: float,
        coalescer_config: Optional[CoalescerConfig],
    ) -> ServingReport:
        """Replay through the asyncio front end under a real wall clock.

        Arrivals are paced with event-loop sleeps at the configured rate and
        every request is submitted concurrently (its future resolves when a
        full or deadline flush serves it); the end-of-stream drain then
        awaits them all, so the report covers every submitted request —
        nothing is dropped.
        """
        import asyncio

        from repro.serving.async_server import AsyncServingFrontEnd

        interval_s = 1.0 / arrival_rate_per_s

        async def _run() -> None:
            front_end = AsyncServingFrontEnd(self, coalescer=coalescer_config)
            futures = []
            for index, transaction in enumerate(ordered):
                if index:
                    await asyncio.sleep(interval_s)
                request = TransactionRequest.from_transaction(transaction)
                futures.append(
                    front_end.submit_nowait(request, was_fraud=transaction.is_fraud)
                )
            await front_end.drain()
            await asyncio.gather(*futures)
            self.last_coalescer_stats = front_end.stats()

        asyncio.run(_run())
        return self.report()

    def _process_transaction_batch(self, transactions: Sequence[Transaction]) -> None:
        self.process_batch(
            [TransactionRequest.from_transaction(t) for t in transactions],
            was_fraud=[t.is_fraud for t in transactions],
        )

    # ------------------------------------------------------------------
    def report(self) -> ServingReport:
        """Aggregate everything served so far into a :class:`ServingReport`.

        Built from running counters rather than the ``served`` list, so it
        works identically with ``retain_served=False`` (bounded-memory
        replays).
        """
        counters = self._counters
        return ServingReport(
            total=counters["total"],
            interrupted=counters["interrupted"],
            approved=counters["total"] - counters["interrupted"],
            true_alerts=counters["true_alerts"],
            false_alerts=counters["false_alerts"],
            missed_frauds=counters["missed_frauds"],
            degraded=counters["degraded"],
            peak_queue_depth=(
                self.admission.peak_queue_depth if self.admission is not None else 0.0
            ),
            missing_embeddings=sum(
                server.missing_embeddings for server in self._model_servers
            ),
        )

    def latency_report(self) -> Dict[str, float]:
        """Combined latency summary across the MS fleet.

        Quantiles are computed over the merged raw samples of every server's
        tracker — taking the max of per-server p99s would overstate the
        fleet p99 whenever server loads differ.
        """
        merged = LatencyTracker.merged_report(
            [server.latency for server in self._model_servers]
        )
        return {
            "count": float(merged.count),
            "mean_ms": merged.mean_ms,
            "p50_ms": merged.p50_ms,
            "p95_ms": merged.p95_ms,
            "p99_ms": merged.p99_ms,
            "p999_ms": merged.p999_ms,
            "sla_violations": float(merged.sla_violations),
        }
