"""Asyncio serving front end: real concurrent requests, wall-clock deadlines.

Everything in :mod:`repro.serving.coalescer` is clock-agnostic — callers pass
``now_ms`` explicitly — so the deterministic tests replay against a simulated
arrival clock.  This module is the other half of that design: an event-loop
front end where the same :class:`~repro.serving.coalescer.RequestCoalescer`
is driven by *real* concurrent ``await``-ers and a wall-clock flush timer.

The flow per request:

1. a caller awaits :meth:`AsyncServingFrontEnd.submit` (or holds the future
   from :meth:`submit_nowait`); the request is buffered in the coalescer
   stamped with the loop's wall clock,
2. the front end keeps exactly one timer armed at the coalescer's
   ``next_deadline_ms()`` — the instant the oldest buffered request has
   waited ``max_delay_ms``,
3. whichever comes first — the buffer filling to ``max_batch`` or the timer
   firing — flushes one micro-batch through the Alipay server's vectorised
   fleet path, and every flushed request's future resolves with its
   :class:`~repro.serving.alipay.ServedTransaction`.

Flushes preserve submission order and so do the waiting futures, which is
what makes the FIFO waiter queue below correct.  Requests shed by the
admission controller resolve immediately with the rule-based fallback's
answer — under overload the front end degrades, it never drops.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro.exceptions import ServingError
from repro.serving.admission import AdmissionDecision
from repro.serving.coalescer import CoalescerConfig, RequestCoalescer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.alipay import AlipayServer, ServedTransaction
    from repro.serving.model_server import TransactionRequest


class AsyncServingFrontEnd:
    """Event-loop adapter coalescing concurrent requests under a wall clock.

    Wraps one :class:`~repro.serving.alipay.AlipayServer` (whose configured
    admission controller and fleet policy apply unchanged) and one
    :class:`~repro.serving.coalescer.RequestCoalescer`.  Must be used from a
    running event loop; one instance serves one loop.
    """

    def __init__(
        self,
        alipay: "AlipayServer",
        *,
        coalescer: Optional[CoalescerConfig] = None,
    ):
        self.alipay = alipay
        self.coalescer = RequestCoalescer(alipay, coalescer)
        self._waiters: Deque[asyncio.Future] = deque()
        self._timer: Optional[asyncio.TimerHandle] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._epoch: float = 0.0

    # ------------------------------------------------------------------
    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._epoch = loop.time()
        elif loop is not self._loop:
            raise ServingError("AsyncServingFrontEnd is bound to another event loop")
        return loop

    def now_ms(self) -> float:
        """Milliseconds of wall clock since this front end first served."""
        loop = self._ensure_loop()
        return (loop.time() - self._epoch) * 1000.0

    # ------------------------------------------------------------------
    def submit_nowait(
        self,
        request: "TransactionRequest",
        *,
        was_fraud: Optional[bool] = None,
    ) -> "asyncio.Future[ServedTransaction]":
        """Enqueue one request; the returned future resolves when it is served.

        Synchronous (no awaits before the request is buffered), so a burst of
        ``submit_nowait`` calls lands in the coalescer in call order even if
        the event loop never gets control in between.
        """
        loop = self._ensure_loop()
        now_ms = self.now_ms()
        future: asyncio.Future = loop.create_future()
        if self.alipay.admission is not None:
            decision = self.alipay.admission.on_arrival(now_ms)
            if decision is AdmissionDecision.DEGRADE:
                future.set_result(
                    self.alipay.process_degraded(request, was_fraud=was_fraud)
                )
                return future
        self._waiters.append(future)
        self._resolve(self.coalescer.submit(request, now_ms=now_ms, was_fraud=was_fraud))
        self._arm_timer()
        return future

    async def submit(
        self,
        request: "TransactionRequest",
        *,
        was_fraud: Optional[bool] = None,
    ) -> "ServedTransaction":
        """Serve one request: buffered, coalesced, awaited until flushed."""
        return await self.submit_nowait(request, was_fraud=was_fraud)

    def _resolve(self, served: List["ServedTransaction"]) -> None:
        """Resolve the oldest waiters with one flush's results (both FIFO)."""
        for transaction in served:
            self._waiters.popleft().set_result(transaction)

    # ------------------------------------------------------------------
    def _arm_timer(self) -> None:
        """Keep exactly one timer armed at the coalescer's next deadline."""
        assert self._loop is not None
        deadline_ms = self.coalescer.next_deadline_ms()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if deadline_ms is None:
            return
        self._timer = self._loop.call_at(
            self._epoch + deadline_ms / 1000.0, self._on_deadline
        )

    def _on_deadline(self) -> None:
        self._timer = None
        deadline_ms = self.coalescer.next_deadline_ms()
        if deadline_ms is None:
            return
        # Timers can fire marginally before the target instant; clamping to
        # the deadline guarantees the flush happens now and the recorded wait
        # is exactly the max_delay_ms budget, never more.
        served = self.coalescer.advance(max(self.now_ms(), deadline_ms))
        self._resolve(served)
        self._arm_timer()

    # ------------------------------------------------------------------
    async def drain(self) -> List["ServedTransaction"]:
        """Force-flush the buffer (end of stream) and disarm the timer.

        Returns the flushed transactions; any outstanding futures from
        :meth:`submit_nowait` resolve as a side effect.
        """
        self._ensure_loop()
        served = self.coalescer.flush()
        self._resolve(served)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        return served

    def stats(self) -> Dict[str, float]:
        """The underlying coalescer's batching statistics."""
        return self.coalescer.stats()

    @property
    def pending(self) -> int:
        """Requests currently buffered awaiting a flush."""
        return len(self.coalescer)
