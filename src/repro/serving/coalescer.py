"""Request coalescing: micro-batching concurrent requests under a latency budget.

The vectorised ``ModelServer.predict_batch`` path amortises the HBase
``multi_get``, the plan execution and the model call over a whole batch — but
online traffic arrives one transfer at a time.  The
:class:`RequestCoalescer` bridges the two: requests are buffered as they
arrive and flushed as one ``process_batch`` call when either

* the buffer reaches ``max_batch`` (a *full* flush — the throughput bound), or
* the oldest buffered request has waited ``max_delay_ms`` (a *deadline*
  flush — the latency bound: coalescing can add at most ``max_delay_ms`` of
  queueing delay to any request).

Time is explicit (callers pass ``now_ms``), so the same coalescer runs under
the simulated replay clock in tests/benchmarks and under a wall clock in a
real event loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.exceptions import ServingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.alipay import AlipayServer, ServedTransaction
    from repro.serving.model_server import TransactionRequest


@dataclass(frozen=True)
class CoalescerConfig:
    """Latency-budgeted micro-batching policy.

    ``max_batch`` bounds the batch size (flush as soon as it is reached);
    ``max_delay_ms`` bounds how long any request may sit in the buffer
    waiting for companions.
    """

    max_batch: int = 64
    max_delay_ms: float = 5.0

    def validate(self) -> None:
        """Reject empty batches and negative delay budgets."""
        if self.max_batch < 1:
            raise ServingError("max_batch must be at least 1")
        if self.max_delay_ms < 0:
            raise ServingError("max_delay_ms cannot be negative")


class RequestCoalescer:
    """Buffers requests and flushes deadline-bounded micro-batches.

    Drives an :class:`~repro.serving.alipay.AlipayServer`'s ``process_batch``
    (which routes each flushed batch through the configured fleet policy).
    """

    def __init__(
        self, alipay: "AlipayServer", config: Optional[CoalescerConfig] = None
    ) -> None:
        self.alipay = alipay
        self.config = config or CoalescerConfig()
        self.config.validate()
        self._pending: List[Tuple["TransactionRequest", Optional[bool], float]] = []
        self.full_flushes = 0
        self.deadline_flushes = 0
        self.forced_flushes = 0
        self.requests_coalesced = 0
        self._batch_sizes: List[int] = []
        self._wait_ms: List[float] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pending)

    def submit(
        self,
        request: "TransactionRequest",
        *,
        now_ms: float,
        was_fraud: Optional[bool] = None,
    ) -> List["ServedTransaction"]:
        """Buffer one arriving request; returns whatever flushed at ``now_ms``.

        The deadline of already-buffered requests is checked first, so a
        request arriving after a long gap cannot extend its predecessors'
        wait beyond ``max_delay_ms`` of *their* arrival.
        """
        served = self.advance(now_ms)
        self._pending.append((request, was_fraud, float(now_ms)))
        if len(self._pending) >= self.config.max_batch:
            self.full_flushes += 1
            served.extend(self._flush(now_ms))
        return served

    def next_deadline_ms(self) -> Optional[float]:
        """When the buffer must flush: oldest arrival + ``max_delay_ms``.

        ``None`` with an empty buffer.  This is the instant a wall-clock
        event loop arms its flush timer for (see
        :class:`~repro.serving.async_server.AsyncServingFrontEnd`); the
        simulated clock checks it implicitly on every :meth:`advance`.
        """
        if not self._pending:
            return None
        return self._pending[0][2] + self.config.max_delay_ms

    def advance(self, now_ms: float) -> List["ServedTransaction"]:
        """Flush the buffer if its oldest request's deadline has passed.

        The flush is timestamped at the *deadline* (``oldest arrival +
        max_delay_ms``), not at ``now_ms`` — a real event loop arms a timer
        that fires at the deadline, so even when this simulated clock is only
        driven at arrival instants, no request's recorded wait ever exceeds
        the ``max_delay_ms`` budget.
        """
        if not self._pending:
            return []
        deadline_ms = self._pending[0][2] + self.config.max_delay_ms
        if now_ms >= deadline_ms:
            self.deadline_flushes += 1
            return self._flush(deadline_ms)
        return []

    def flush(self, *, now_ms: Optional[float] = None) -> List["ServedTransaction"]:
        """Force out whatever is buffered (end-of-stream drain)."""
        if not self._pending:
            return []
        self.forced_flushes += 1
        if now_ms is None:
            now_ms = self._pending[-1][2]
        return self._flush(now_ms)

    def _flush(self, now_ms: float) -> List["ServedTransaction"]:
        batch, self._pending = self._pending, []
        self._batch_sizes.append(len(batch))
        self.requests_coalesced += len(batch)
        self._wait_ms.extend(now_ms - arrival for _, _, arrival in batch)
        return self.alipay.process_batch(
            [request for request, _, _ in batch],
            was_fraud=[label for _, label, _ in batch],
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        """Batching effectiveness: flush causes, batch sizes, queue waits."""
        batches = len(self._batch_sizes)
        return {
            "requests": float(self.requests_coalesced),
            "batches": float(batches),
            "mean_batch": self.requests_coalesced / batches if batches else 0.0,
            "full_flushes": float(self.full_flushes),
            "deadline_flushes": float(self.deadline_flushes),
            "forced_flushes": float(self.forced_flushes),
            "mean_wait_ms": sum(self._wait_ms) / len(self._wait_ms) if self._wait_ms else 0.0,
            "max_wait_ms": max(self._wait_ms) if self._wait_ms else 0.0,
        }
