"""Incremental Structure2Vec refresh in the serving path.

The offline pipeline trains :class:`~repro.nrl.structure2vec.Structure2Vec`
on the 90-day transaction network and bulk-loads one embedding row per
account into the ``user_node_embeddings`` column family.  Online, the graph
keeps growing: every served transaction is a new (or reinforced) edge, and
the bulk-loaded vectors of the touched neighbourhood go stale.

This module closes that gap without a nightly full retrain.  The
:class:`EmbeddingRefresher` maintains the cumulative transaction network
(same :class:`~repro.graph.builder.NetworkBuilder` semantics as the offline
job), and each observed transfer enqueues its two endpoint accounts into an
:class:`EmbeddingRefreshQueue`.  A refresh pass drains the queue, expands the
dirty endpoints into the set of accounts whose embeddings can actually have
changed — with T propagation rounds, exactly the radius-(T-1) ball around the
endpoints — and re-embeds that neighbourhood:

* ``"propagate"`` mode freezes the trained parameters and runs the exact
  restricted forward pass (:meth:`Structure2Vec.embed_nodes`) over the
  touched ball.  Cost is proportional to the neighbourhood, not the graph,
  and the refreshed rows equal a full-graph forward pass with the same
  parameters.
* ``"retrain"`` mode refits a fresh model (same config and seed) on the
  cumulative network and labels, then writes only the touched rows.  This is
  bit-identical to a from-scratch offline retrain at the same seed — the
  convergence oracle the property tests assert against.

Refreshed rows are written through :meth:`HBaseClient.put` with a
monotonically increasing version above the offline bulk-load version, so the
per-column-family client caches are invalidated on every attached connection
and "latest" reads observe the refreshed vectors.  Untouched accounts are
never written, so their stored rows stay bit-unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.datagen.schema import Transaction
from repro.exceptions import ServingError
from repro.graph.builder import EdgeWeighting, NetworkBuilder
from repro.graph.network import TransactionNetwork
from repro.hbase.client import EMBEDDINGS_FAMILY, HBaseClient
from repro.nrl.structure2vec import Structure2Vec

#: Refresh strategies understood by :class:`EmbeddingRefreshConfig`.
REFRESH_MODES: Tuple[str, ...] = ("propagate", "retrain")


class EmbeddingRefreshQueue:
    """Ordered, deduplicating FIFO of accounts awaiting re-embedding.

    Re-enqueueing an account already in the queue coalesces into the existing
    entry (the account only needs one re-embed per refresh pass, computed
    against the network state at drain time).  Insertion order is preserved
    so refresh batches are deterministic for a deterministic event stream.
    """

    def __init__(self) -> None:
        self._pending: Dict[str, None] = {}
        #: Total enqueue calls, including coalesced duplicates.
        self.enqueued = 0
        #: Enqueue calls absorbed by an existing pending entry.
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, account: str) -> bool:
        return account in self._pending

    def enqueue(self, account: str) -> bool:
        """Add one account; returns False when it was already pending."""
        self.enqueued += 1
        if account in self._pending:
            self.coalesced += 1
            return False
        self._pending[account] = None
        return True

    def extend(self, accounts: Iterable[str]) -> int:
        """Enqueue many accounts; returns how many were newly added."""
        return sum(1 for account in accounts if self.enqueue(account))

    def drain(self, max_accounts: Optional[int] = None) -> List[str]:
        """Pop up to ``max_accounts`` pending accounts in FIFO order.

        ``None`` drains the whole queue.
        """
        if max_accounts is None or max_accounts >= len(self._pending):
            drained = list(self._pending)
            self._pending.clear()
            return drained
        if max_accounts <= 0:
            return []
        drained = list(self._pending)[:max_accounts]
        for account in drained:
            del self._pending[account]
        return drained


@dataclass
class EmbeddingRefreshConfig:
    """Tuning knobs of the online embedding refresher."""

    #: Qualifier the refreshed vector is written under in the embeddings
    #: column family (must match the serving plan's embedding block).
    set_name: str = "s2v"
    #: ``"propagate"`` re-runs the frozen-parameter restricted forward pass;
    #: ``"retrain"`` refits a fresh model on the cumulative network.
    mode: str = "propagate"
    #: Maximum queued endpoints drained per refresh pass (0 = unbounded).
    #: The dirty ball is expanded from the drained endpoints only; the rest
    #: stay queued for the next pass.
    max_refresh_batch: int = 0
    #: When set, :meth:`EmbeddingRefresher.observe_transaction` triggers a
    #: refresh pass automatically once this many accounts are pending.
    auto_refresh_threshold: Optional[int] = None
    #: Edge weighting of the cumulative network — must match the offline
    #: :func:`~repro.graph.builder.build_network` call for parity.
    weighting: EdgeWeighting = "count"

    def validate(self) -> None:
        """Raise :class:`ServingError` on invalid settings."""
        if not self.set_name:
            raise ServingError("set_name must be non-empty")
        if self.mode not in REFRESH_MODES:
            raise ServingError(
                f"unknown refresh mode {self.mode!r}; expected one of {REFRESH_MODES}"
            )
        if self.max_refresh_batch < 0:
            raise ServingError("max_refresh_batch must be non-negative")
        if self.auto_refresh_threshold is not None and self.auto_refresh_threshold < 1:
            raise ServingError("auto_refresh_threshold must be at least 1")


@dataclass
class RefreshReport:
    """Outcome of one :meth:`EmbeddingRefresher.refresh` pass."""

    #: Endpoint accounts drained from the queue this pass.
    drained: List[str] = field(default_factory=list)
    #: Accounts actually re-embedded and written (the dirty ball).
    refreshed: List[str] = field(default_factory=list)
    #: Refresh strategy that produced the rows.
    mode: str = "propagate"
    #: HBase version the refreshed rows were written at (0 when no-op).
    version: int = 0


class EmbeddingRefresher:
    """Keeps online Structure2Vec rows convergent with the growing graph.

    Parameters
    ----------
    model:
        The offline-trained :class:`Structure2Vec`.  ``"propagate"`` mode
        freezes its parameters; ``"retrain"`` mode reuses its config (and
        requires ``config.seed`` so refits are reproducible).
    hbase / table_name:
        The feature store holding the ``user_node_embeddings`` family.
    config:
        Refresh strategy knobs (:class:`EmbeddingRefreshConfig`).
    warmup_transactions:
        The training-window history.  Folded into the cumulative network and
        node labels so the online graph starts from exactly the state the
        offline model was trained on.
    start_version:
        Version floor for refreshed rows — pass the offline bulk-load
        version so refreshed rows always supersede the published snapshot.
    """

    def __init__(
        self,
        model: Structure2Vec,
        hbase: HBaseClient,
        table_name: str = "titant_features",
        *,
        config: Optional[EmbeddingRefreshConfig] = None,
        warmup_transactions: Optional[Iterable[Transaction]] = None,
        start_version: int = 0,
    ) -> None:
        self.config = config or EmbeddingRefreshConfig()
        self.config.validate()
        if self.config.mode == "retrain" and model.config.seed is None:
            raise ServingError(
                "retrain mode requires a seeded Structure2VecConfig so every "
                "refit reproduces the offline training exactly"
            )
        self.model = model
        self.hbase = hbase
        self.table_name = table_name
        self.queue = EmbeddingRefreshQueue()
        self._builder = NetworkBuilder(weighting=self.config.weighting)
        self._labels: Dict[str, int] = {}
        self._version = int(start_version)
        self.events_observed = 0
        self.refreshes = 0
        self.rows_written = 0
        if warmup_transactions is not None:
            for transaction in warmup_transactions:
                self._fold(transaction)

    # ------------------------------------------------------------------
    @property
    def network(self) -> TransactionNetwork:
        """The cumulative transaction network (warmup + observed events)."""
        return self._builder.finish()

    @property
    def node_labels(self) -> Dict[str, int]:
        """Current node labels (payee of any observed fraud ⇒ 1)."""
        return dict(self._labels)

    @property
    def current_version(self) -> int:
        """Version of the most recent refresh write (or the start version)."""
        return self._version

    def _fold(self, transaction: Transaction) -> None:
        self._builder.add(transaction)
        self._labels.setdefault(transaction.payer_id, 0)
        self._labels.setdefault(transaction.payee_id, 0)
        if transaction.is_fraud:
            self._labels[transaction.payee_id] = 1

    def observe_transaction(self, transaction: Transaction) -> None:
        """Fold one new edge into the graph and enqueue its endpoints.

        Only the endpoints are queued; the full set of accounts whose
        embeddings the edge can affect (its radius-(T-1) ball) is expanded at
        refresh time against the then-current network, which is both cheaper
        under coalescing and correct for edges that arrive between passes.
        """
        self._fold(transaction)
        self.events_observed += 1
        self.queue.enqueue(transaction.payer_id)
        self.queue.enqueue(transaction.payee_id)
        threshold = self.config.auto_refresh_threshold
        if threshold is not None and len(self.queue) >= threshold:
            self.refresh()

    # ------------------------------------------------------------------
    def _dirty_ball(self, network: TransactionNetwork, seeds: List[str]) -> List[str]:
        """Accounts whose mu^(T) can differ after edges at ``seeds`` changed.

        A new edge changes its endpoints' structural features and aggregation
        rows; that influences mu^(T) of every node within T-1 hops.  Expanded
        deterministically (sorted neighbour order, seeds in drain order).
        """
        radius = self.model.config.propagation_rounds - 1
        seen: Set[str] = set(seeds)
        order: List[str] = list(seeds)
        frontier = list(seeds)
        for _ in range(radius):
            next_frontier: List[str] = []
            for node in frontier:
                for neighbor in sorted(network.neighbors(node)):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        order.append(neighbor)
                        next_frontier.append(neighbor)
            frontier = next_frontier
        return order

    def refresh(self) -> RefreshReport:
        """Drain the queue and write refreshed rows for the touched ball."""
        limit = self.config.max_refresh_batch or None
        drained = self.queue.drain(limit)
        if not drained:
            return RefreshReport(mode=self.config.mode)
        network = self.network
        targets = self._dirty_ball(network, drained)

        if self.config.mode == "retrain":
            # A fresh model per refit: ``fit`` consumes the rng during
            # initialisation, so reusing an instance would drift from the
            # from-scratch training this mode promises bit-parity with.
            refit = Structure2Vec(self.model.config).fit(
                network, node_labels=self._labels
            )
            embeddings = refit.embeddings()
            vectors = {node: embeddings[node] for node in targets}
        else:
            restricted = self.model.embed_nodes(network, targets)
            vectors = {node: restricted[node] for node in targets}

        self._version += 1
        for node in targets:
            self.hbase.put(
                self.table_name,
                node,
                EMBEDDINGS_FAMILY,
                {self.config.set_name: tuple(float(v) for v in vectors[node])},
                version=self._version,
            )
        self.rows_written += len(targets)
        self.refreshes += 1
        return RefreshReport(
            drained=drained,
            refreshed=targets,
            mode=self.config.mode,
            version=self._version,
        )
