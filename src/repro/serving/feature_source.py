"""Online :class:`FeatureSource`: per-user rows from Ali-HBase.

The Model Server executes the exported :class:`FeaturePlan` against this
source.  Profiles come from the basic-features column family (one qualifier
per attribute) and embeddings from the embeddings family, where each set is
stored as a single array-valued qualifier (``dw`` → list of floats) rather
than one scalar cell per dimension, so a block read is one cell instead of
``d``.  All reads go through :meth:`HBaseClient.multi_get`, one batched call
per column family per batch of transactions.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.datagen.schema import Gender, UserProfile
from repro.exceptions import ServingError
from repro.features.plan import EmbeddingBlockSpec, FeatureSource
from repro.hbase.client import (
    AGGREGATES_FAMILY,
    BASIC_FEATURES_FAMILY,
    EMBEDDINGS_FAMILY,
    HBaseClient,
)


def profile_from_row(user_id: str, row: Dict[str, object]) -> UserProfile:
    """Deserialise a basic-features HBase row; missing cells get the neutral
    defaults the offline :class:`BasicFeatureExtractor` uses for unseen users,
    so cold accounts score identically offline and online."""
    return UserProfile(
        user_id=user_id,
        age=int(row.get("age", 35)),
        gender=Gender(row.get("gender", "U")),
        home_city=str(row.get("home_city", "city_000")),
        account_age_days=int(row.get("account_age_days", 365)),
        kyc_level=int(row.get("kyc_level", 2)),
        is_merchant=bool(row.get("is_merchant", False)),
        device_count=int(row.get("device_count", 1)),
        community=int(row.get("community", -1)),
    )


class HBaseFeatureSource(FeatureSource):
    """Reads profiles and embedding blocks from the TitAnt feature store."""

    def __init__(self, hbase: HBaseClient, table_name: str = "titant_features"):
        self.hbase = hbase
        self.table_name = table_name
        #: (user, block) reads that found no stored embedding cell at all —
        #: distinguishes a genuinely missing row (cold account, never
        #: published) from a stored vector that happens to be all zeros.
        self.missing_embeddings = 0

    # ------------------------------------------------------------------
    def profiles_for(self, user_ids: Sequence[str]) -> Dict[str, UserProfile]:
        rows = self.hbase.multi_get(
            self.table_name, list(user_ids), BASIC_FEATURES_FAMILY, default={}
        )
        return {
            user_id: profile_from_row(user_id, row) for user_id, row in rows.items()
        }

    def aggregate_rows(self, user_ids: Sequence[str]) -> Dict[str, Dict[str, object]]:
        """Latest per-user sliding-window aggregate rows.

        Rows are written through by the online streaming engine on every
        ingested transaction (each write invalidates the client-side row
        cache), so the next request for an account always sees its aggregates
        as of that account's most recent transaction.  A stored row is
        anchored at the instant it was written: for an account *idle* since
        then, events that have since aged past the window edge still count
        until the account's next transaction or the updater's periodic
        refresh (``refresh_interval_seconds``) re-anchors the row — with
        sub-day windows, configure the refresh to bound that decay lag.
        Cold accounts get an empty row, which the plan executor scores as
        all-zero aggregates — identical to the offline treatment of unseen
        users.
        """
        return self.hbase.multi_get(
            self.table_name, list(user_ids), AGGREGATES_FAMILY, default={}
        )

    def embedding_matrix(
        self, block: EmbeddingBlockSpec, user_ids: Sequence[str]
    ) -> np.ndarray:
        rows = self.hbase.multi_get(
            self.table_name, list(user_ids), EMBEDDINGS_FAMILY, default={}
        )
        vectors: Dict[str, np.ndarray] = {}
        for user_id, row in rows.items():
            vectors[user_id] = self._vector_from_row(block, row)
        result = np.zeros((len(user_ids), block.dimension), dtype=np.float64)
        for position, user_id in enumerate(user_ids):
            result[position] = vectors[user_id]
        return result

    def _vector_from_row(
        self, block: EmbeddingBlockSpec, row: Dict[str, object]
    ) -> np.ndarray:
        value = row.get(block.set_name)
        if value is not None:
            vector = np.asarray(value, dtype=np.float64).ravel()
            if vector.shape[0] != block.dimension:
                raise ServingError(
                    f"stored {block.set_name!r} embedding has "
                    f"{vector.shape[0]} dimensions, plan expects {block.dimension}"
                )
            return vector
        if f"{block.set_name}_0" not in row:
            # No array cell and no legacy scalar cells: the embedding row was
            # never published for this account.  Serve the explicit neutral
            # default — the zero vector, exactly what the offline
            # ``EmbeddingSet.lookup`` uses for unknown users — and count it,
            # so missing rows are observable instead of masquerading as a
            # trained all-zero embedding.
            self.missing_embeddings += 1
            return np.zeros(block.dimension, dtype=np.float64)
        # Legacy layout: one scalar cell per dimension ("dw_0", "dw_1", ...).
        vector = np.zeros(block.dimension, dtype=np.float64)
        for dim in range(block.dimension):
            vector[dim] = float(row.get(f"{block.set_name}_{dim}", 0.0))
        return vector
