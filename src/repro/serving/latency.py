"""Prediction latency tracking.

The system has "strict serving requirements, i.e., tens of milliseconds at
most for online detection including computation and communication costs".
The tracker records the wall-clock latency of every online prediction and
summarises percentiles and SLA violations; the serving benchmark asserts the
millisecond-level claim on the in-process reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ServingError


@dataclass
class LatencyReport:
    """Summary of recorded prediction latencies (milliseconds)."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float
    sla_budget_ms: float
    sla_violations: int
    #: Tail percentile the sustained-load harness tracks; 0.0 for empty sets.
    p999_ms: float = 0.0

    @property
    def sla_violation_rate(self) -> float:
        return self.sla_violations / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "p999_ms": self.p999_ms,
            "max_ms": self.max_ms,
            "sla_budget_ms": self.sla_budget_ms,
            "sla_violations": float(self.sla_violations),
        }


class LatencyTracker:
    """Records per-request latencies against an SLA budget."""

    def __init__(self, *, sla_budget_ms: float = 50.0):
        if sla_budget_ms <= 0:
            raise ServingError("sla_budget_ms must be positive")
        self.sla_budget_ms = sla_budget_ms
        self._latencies_ms: List[float] = []

    # ------------------------------------------------------------------
    def record(self, latency_ms: float) -> None:
        if latency_ms < 0:
            raise ServingError("latency cannot be negative")
        self._latencies_ms.append(float(latency_ms))

    def __len__(self) -> int:
        return len(self._latencies_ms)

    def reset(self) -> None:
        self._latencies_ms = []

    @property
    def latencies_ms(self) -> List[float]:
        """Raw recorded samples — merge these (or use :meth:`merged_report`)
        for fleet-wide quantiles; taking ``max`` of per-server percentiles
        overstates them."""
        return list(self._latencies_ms)

    # ------------------------------------------------------------------
    @staticmethod
    def merged_report(trackers: Sequence["LatencyTracker"]) -> LatencyReport:
        """Fleet-wide report over the pooled raw samples of many trackers.

        Percentiles are computed on the merged sample set, which is the
        statistically correct fleet p99 (the max of per-server p99s is an
        upper bound, not the quantile).  SLA violations are counted against
        each tracker's own budget; the reported budget is the strictest one.
        """
        pooled: List[float] = []
        violations = 0
        budgets: List[float] = []
        for tracker in trackers:
            pooled.extend(tracker._latencies_ms)
            violations += int(
                np.sum(np.array(tracker._latencies_ms) > tracker.sla_budget_ms)
            ) if tracker._latencies_ms else 0
            budgets.append(tracker.sla_budget_ms)
        budget = min(budgets) if budgets else 50.0
        if not pooled:
            return LatencyReport(
                count=0,
                mean_ms=0.0,
                p50_ms=0.0,
                p95_ms=0.0,
                p99_ms=0.0,
                max_ms=0.0,
                sla_budget_ms=budget,
                sla_violations=0,
            )
        values = np.array(pooled)
        return LatencyReport(
            count=int(values.shape[0]),
            mean_ms=float(values.mean()),
            p50_ms=float(np.percentile(values, 50)),
            p95_ms=float(np.percentile(values, 95)),
            p99_ms=float(np.percentile(values, 99)),
            p999_ms=float(np.percentile(values, 99.9)),
            max_ms=float(values.max()),
            sla_budget_ms=budget,
            sla_violations=violations,
        )

    # ------------------------------------------------------------------
    def report(self) -> LatencyReport:
        if not self._latencies_ms:
            return LatencyReport(
                count=0,
                mean_ms=0.0,
                p50_ms=0.0,
                p95_ms=0.0,
                p99_ms=0.0,
                max_ms=0.0,
                sla_budget_ms=self.sla_budget_ms,
                sla_violations=0,
            )
        values = np.array(self._latencies_ms)
        return LatencyReport(
            count=int(values.shape[0]),
            mean_ms=float(values.mean()),
            p50_ms=float(np.percentile(values, 50)),
            p95_ms=float(np.percentile(values, 95)),
            p99_ms=float(np.percentile(values, 99)),
            p999_ms=float(np.percentile(values, 99.9)),
            max_ms=float(values.max()),
            sla_budget_ms=self.sla_budget_ms,
            sla_violations=int(np.sum(values > self.sla_budget_ms)),
        )

    def within_sla(self, *, quantile: float = 0.95) -> bool:
        """True when the requested latency quantile fits inside the SLA budget."""
        if not self._latencies_ms:
            return True
        if not 0.0 < quantile <= 1.0:
            raise ServingError("quantile must be in (0, 1]")
        value = float(np.percentile(np.array(self._latencies_ms), quantile * 100.0))
        return value <= self.sla_budget_ms
