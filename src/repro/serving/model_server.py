"""The Model Server (MS).

The MS answers the Alipay server's fraud-check calls.  For each transaction
request it

1. reads the payer's and payee's latest rows from Ali-HBase — one batched
   ``multi_get`` per column family (profiles, embeddings) per request batch,
2. executes the :class:`~repro.features.plan.FeaturePlan` exported by the
   offline trainer, so the online vector is byte-identical to the training
   one — the MS owns no feature-assembly logic of its own,
3. scores the assembled design matrix with one ``predict_proba`` call and
   compares against the alert threshold calibrated offline,
4. reports the decisions together with the measured (amortised) latency.

Model files are replaced periodically ("T+1"): :meth:`ModelServer.load_model`
hot-swaps the detector, its threshold and its plan atomically as one
immutable :class:`ServingModel`, without interrupting serving and without
mutating any shared configuration object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.datagen.schema import Transaction, TransactionChannel
from repro.exceptions import ModelNotLoadedError, ServingError
from repro.features.plan import FeaturePlan, FeaturePlanExecutor
from repro.hbase.client import HBaseClient
from repro.logging_utils import Stopwatch, get_logger
from repro.models.base import BaseDetector
from repro.serving.feature_source import HBaseFeatureSource
from repro.serving.latency import LatencyTracker

logger = get_logger("serving.model_server")


@dataclass
class TransactionRequest:
    """The online request payload: a transaction without a label."""

    transaction_id: str
    payer_id: str
    payee_id: str
    amount: float
    hour: int
    day: int
    channel: TransactionChannel
    trans_city: str
    device_id: str
    is_new_device: bool
    ip_risk_score: float
    payer_recent_txn_count: int = 0
    payer_recent_amount: float = 0.0
    payee_recent_inbound_count: int = 0

    @classmethod
    def from_transaction(cls, transaction: Transaction) -> "TransactionRequest":
        """Strip the label from an offline transaction record."""
        return cls(
            transaction_id=transaction.transaction_id,
            payer_id=transaction.payer_id,
            payee_id=transaction.payee_id,
            amount=transaction.amount,
            hour=transaction.hour,
            day=transaction.day,
            channel=transaction.channel,
            trans_city=transaction.trans_city,
            device_id=transaction.device_id,
            is_new_device=transaction.is_new_device,
            ip_risk_score=transaction.ip_risk_score,
            payer_recent_txn_count=transaction.payer_recent_txn_count,
            payer_recent_amount=transaction.payer_recent_amount,
            payee_recent_inbound_count=transaction.payee_recent_inbound_count,
        )

    def to_transaction(self) -> Transaction:
        """View the request as an (unlabelled) transaction for feature extraction."""
        return Transaction(
            transaction_id=self.transaction_id,
            day=self.day,
            hour=self.hour,
            payer_id=self.payer_id,
            payee_id=self.payee_id,
            amount=self.amount,
            channel=self.channel,
            trans_city=self.trans_city,
            device_id=self.device_id,
            is_new_device=self.is_new_device,
            ip_risk_score=self.ip_risk_score,
            payer_recent_txn_count=self.payer_recent_txn_count,
            payer_recent_amount=self.payer_recent_amount,
            payee_recent_inbound_count=self.payee_recent_inbound_count,
            is_fraud=False,
            label_available_day=self.day,
        )


@dataclass
class PredictionResponse:
    """Result of one online fraud check."""

    transaction_id: str
    fraud_probability: float
    is_fraud_alert: bool
    threshold: float
    model_version: str
    latency_ms: float


@dataclass(frozen=True)
class ModelServerConfig:
    """Immutable server-level configuration.

    Per-model state (threshold, feature plan) lives on the
    :class:`ServingModel` installed by :meth:`ModelServer.load_model`, so two
    servers sharing one config object can never clobber each other;
    ``alert_threshold`` here is only the default for models loaded without a
    calibrated threshold.
    """

    feature_table: str = "titant_features"
    alert_threshold: float = 0.5
    sla_budget_ms: float = 50.0

    def validate(self) -> None:
        """Reject out-of-range thresholds and non-positive SLA budgets."""
        if not 0.0 <= self.alert_threshold <= 1.0:
            raise ServingError("alert_threshold must be in [0, 1]")
        if self.sla_budget_ms <= 0:
            raise ServingError("sla_budget_ms must be positive")


@dataclass(frozen=True)
class ServingModel:
    """One hot-swappable unit of serving state: model ⊕ threshold ⊕ plan."""

    model: BaseDetector
    version: str
    threshold: float
    plan: FeaturePlan

    def __post_init__(self) -> None:
        if not self.model.is_fitted:
            raise ServingError("cannot serve an unfitted model")
        if not 0.0 <= self.threshold <= 1.0:
            raise ServingError("threshold must be in [0, 1]")


@dataclass
class ShadowReport:
    """Divergence of a shadow-scored challenger from the active champion.

    ``mean_abs_divergence`` is the mean absolute difference of the two fraud
    probabilities; ``decision_flips`` counts requests where the two models'
    alert decisions (each against its own threshold) disagree.
    """

    champion_version: str
    challenger_version: str
    requests: int
    mean_abs_divergence: float
    max_abs_divergence: float
    decision_flips: int

    @property
    def decision_flip_rate(self) -> float:
        """Fraction of shadow-scored requests whose alert decision flipped."""
        return self.decision_flips / self.requests if self.requests else 0.0


class ModelServer:
    """One Model Server instance."""

    def __init__(
        self,
        hbase: HBaseClient,
        config: Optional[ModelServerConfig] = None,
    ) -> None:
        self.hbase = hbase
        self.config = config or ModelServerConfig()
        self.config.validate()
        self._feature_table = self.config.feature_table
        self._active: Optional[ServingModel] = None
        self._executor: Optional[FeaturePlanExecutor] = None
        self._shadow: Optional[ServingModel] = None
        self._shadow_executor: Optional[FeaturePlanExecutor] = None
        self._shadow_abs_diffs: List[float] = []
        self._shadow_flips = 0
        self.latency = LatencyTracker(sla_budget_ms=self.config.sla_budget_ms)
        self.requests_served = 0
        self._feature_source: Optional[HBaseFeatureSource] = None
        self._missing_embeddings_base = 0

    # ------------------------------------------------------------------
    # Model lifecycle
    # ------------------------------------------------------------------
    def load_model(
        self,
        model: BaseDetector,
        *,
        version: str,
        threshold: Optional[float] = None,
        plan: Optional[FeaturePlan] = None,
        embedding_specs: Optional[Sequence[tuple]] = None,
        embedding_side: Optional[str] = None,
    ) -> None:
        """Hot-swap the served model (the periodic T+1 update).

        The trainer exports a :class:`FeaturePlan` with every model; pass it
        as ``plan``.  The legacy ``embedding_specs`` / ``embedding_side`` pair
        is still accepted and converted into a plan.
        """
        if not model.is_fitted:
            raise ServingError("cannot load an unfitted model into the Model Server")
        self._active = ServingModel(
            model=model,
            version=version,
            threshold=self.config.alert_threshold if threshold is None else float(threshold),
            plan=self._resolve_plan(plan, embedding_specs, embedding_side),
        )
        self._rebuild_executor()
        logger.info(
            "model %s loaded (threshold %.3f, %d features)",
            version,
            self._active.threshold,
            self._active.plan.num_features,
        )

    @staticmethod
    def _resolve_plan(
        plan: Optional[FeaturePlan],
        embedding_specs: Optional[Sequence[tuple]],
        embedding_side: Optional[str],
    ) -> FeaturePlan:
        if plan is not None and (embedding_specs is not None or embedding_side is not None):
            raise ServingError("pass either a FeaturePlan or embedding specs, not both")
        if plan is None:
            plan = FeaturePlan.from_specs(
                embedding_specs or (), embedding_side=embedding_side or "both"
            )
        return plan

    def load_shadow_model(
        self,
        model: BaseDetector,
        *,
        version: str,
        threshold: Optional[float] = None,
        plan: Optional[FeaturePlan] = None,
        embedding_specs: Optional[Sequence[tuple]] = None,
        embedding_side: Optional[str] = None,
    ) -> None:
        """Install a challenger that shadow-scores live traffic.

        Every subsequent :meth:`predict_batch` also assembles the shadow's
        own plan and scores the challenger on the same requests; only the
        champion's decisions are returned to callers, while the divergence
        between the two is accumulated for :meth:`shadow_report`.  Loading a
        new shadow resets the accumulated divergence stats.
        """
        if not model.is_fitted:
            raise ServingError("cannot shadow an unfitted model")
        self._shadow = ServingModel(
            model=model,
            version=version,
            threshold=self.config.alert_threshold if threshold is None else float(threshold),
            plan=self._resolve_plan(plan, embedding_specs, embedding_side),
        )
        self._shadow_abs_diffs = []
        self._shadow_flips = 0
        self._rebuild_executor()

    def clear_shadow_model(self) -> Optional[ShadowReport]:
        """Stop shadow scoring; returns the final divergence report (if any)."""
        report = self.shadow_report()
        self._shadow = None
        self._shadow_executor = None
        self._shadow_abs_diffs = []
        self._shadow_flips = 0
        return report

    def shadow_report(self) -> Optional[ShadowReport]:
        """Champion-vs-challenger divergence so far (None without a shadow)."""
        if self._shadow is None or self._active is None:
            return None
        diffs = self._shadow_abs_diffs
        return ShadowReport(
            champion_version=self._active.version,
            challenger_version=self._shadow.version,
            requests=len(diffs),
            mean_abs_divergence=float(np.mean(diffs)) if diffs else 0.0,
            max_abs_divergence=float(np.max(diffs)) if diffs else 0.0,
            decision_flips=self._shadow_flips,
        )

    def _rebuild_executor(self) -> None:
        # Executors are rebuilt on every model load / table switch; fold the
        # outgoing active source's missing-row count into the server-level
        # base so the counter survives rotations.
        if self._feature_source is not None:
            self._missing_embeddings_base += self._feature_source.missing_embeddings
            self._feature_source = None
        if self._active is None:
            self._executor = None
        else:
            source = HBaseFeatureSource(self.hbase, self._feature_table)
            self._feature_source = source
            self._executor = FeaturePlanExecutor(self._active.plan, source)
        if self._shadow is None:
            self._shadow_executor = None
        else:
            source = HBaseFeatureSource(self.hbase, self._feature_table)
            self._shadow_executor = FeaturePlanExecutor(self._shadow.plan, source)

    @property
    def missing_embeddings(self) -> int:
        """(user, block) reads on the active scoring path that found no
        stored embedding row at all (served the explicit zero default).

        Accumulated across model rotations and feature-table switches; the
        shadow scoring path is not counted.
        """
        live = (
            self._feature_source.missing_embeddings
            if self._feature_source is not None
            else 0
        )
        return self._missing_embeddings_base + live

    @property
    def feature_table(self) -> str:
        """Name of the HBase table this server reads feature rows from."""
        return self._feature_table

    @feature_table.setter
    def feature_table(self, table_name: str) -> None:
        self._feature_table = table_name
        self._rebuild_executor()

    @property
    def active_model(self) -> Optional[ServingModel]:
        """The champion serving unit currently answering requests."""
        return self._active

    @property
    def shadow_version(self) -> str:
        """Version of the shadow-scored challenger ('' when none installed)."""
        return self._shadow.version if self._shadow is not None else ""

    @property
    def plan_executor(self) -> Optional[FeaturePlanExecutor]:
        """The executor assembling this server's vectors (None before load).

        Exposed so tests can prove offline/online parity: the executor is the
        same class the offline :class:`FeatureAssembler` runs, only pointed at
        the HBase-backed source.
        """
        return self._executor

    @property
    def model_version(self) -> str:
        """Version string of the active model ('' before the first load)."""
        return self._active.version if self._active is not None else ""

    @property
    def alert_threshold(self) -> float:
        """The alert threshold decisions are made against right now."""
        return (
            self._active.threshold
            if self._active is not None
            else self.config.alert_threshold
        )

    @property
    def has_model(self) -> bool:
        """True once a model has been loaded (the server can answer)."""
        return self._active is not None

    # ------------------------------------------------------------------
    # Online prediction
    # ------------------------------------------------------------------
    def predict(self, request: TransactionRequest) -> PredictionResponse:
        """Score one transaction request against the loaded model."""
        return self.predict_batch([request])[0]

    def predict_batch(
        self, requests: Sequence[TransactionRequest]
    ) -> List[PredictionResponse]:
        """Score a micro-batch with one assembly pass and one model call.

        All HBase rows the batch needs are fetched with one ``multi_get`` per
        column family, the design matrix is assembled in one vectorised pass,
        and the model scores it with a single ``predict_proba``.  Each
        response reports the amortised per-request latency (batch wall time
        divided by batch size), which is what the SLA budget constrains.
        """
        active, executor = self._active, self._executor
        if active is None or executor is None:
            raise ModelNotLoadedError("the Model Server has no model loaded")
        if not requests:
            return []
        watch = Stopwatch().start()
        transactions = [request.to_transaction() for request in requests]
        matrix = executor.assemble(transactions, with_labels=False)
        probabilities = active.model.predict_proba(matrix.values)
        per_request_ms = watch.stop() * 1000.0 / len(requests)
        if self._shadow is not None and self._shadow_executor is not None:
            # Shadow scoring is off the latency clock: in production the
            # challenger scores on a mirrored copy of the traffic, not in the
            # caller's critical path.
            shadow_matrix = self._shadow_executor.assemble(transactions, with_labels=False)
            shadow_probabilities = self._shadow.model.predict_proba(shadow_matrix.values)
            self._shadow_abs_diffs.extend(
                np.abs(np.asarray(shadow_probabilities) - np.asarray(probabilities)).tolist()
            )
            self._shadow_flips += int(
                np.sum(
                    (np.asarray(probabilities) >= active.threshold)
                    != (np.asarray(shadow_probabilities) >= self._shadow.threshold)
                )
            )
        responses: List[PredictionResponse] = []
        for request, probability in zip(requests, probabilities):
            probability = float(probability)
            self.latency.record(per_request_ms)
            self.requests_served += 1
            responses.append(
                PredictionResponse(
                    transaction_id=request.transaction_id,
                    fraud_probability=probability,
                    is_fraud_alert=probability >= active.threshold,
                    threshold=active.threshold,
                    model_version=active.version,
                    latency_ms=per_request_ms,
                )
            )
        return responses
