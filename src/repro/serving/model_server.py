"""The Model Server (MS).

The MS answers the Alipay server's fraud-check calls.  For each transaction
request it

1. reads the payer's and payee's latest rows from Ali-HBase — one column
   family with profile/basic features, one with the user node embeddings,
2. assembles exactly the feature vector the offline trainer used
   (52 basic features followed by the configured embedding blocks),
3. scores it with the currently loaded model file and compares against the
   alert threshold calibrated offline,
4. reports the decision together with the measured latency.

Model files are replaced periodically ("T+1"): :meth:`ModelServer.load_model`
hot-swaps the detector and records the version, without interrupting serving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datagen.schema import Gender, Transaction, TransactionChannel, UserProfile
from repro.exceptions import ModelNotLoadedError, ServingError
from repro.features.basic import BasicFeatureExtractor
from repro.hbase.client import BASIC_FEATURES_FAMILY, EMBEDDINGS_FAMILY, HBaseClient
from repro.logging_utils import Stopwatch, get_logger
from repro.models.base import BaseDetector
from repro.serving.latency import LatencyTracker

logger = get_logger("serving.model_server")


@dataclass
class TransactionRequest:
    """The online request payload: a transaction without a label."""

    transaction_id: str
    payer_id: str
    payee_id: str
    amount: float
    hour: int
    day: int
    channel: TransactionChannel
    trans_city: str
    device_id: str
    is_new_device: bool
    ip_risk_score: float
    payer_recent_txn_count: int = 0
    payer_recent_amount: float = 0.0
    payee_recent_inbound_count: int = 0

    @classmethod
    def from_transaction(cls, transaction: Transaction) -> "TransactionRequest":
        """Strip the label from an offline transaction record."""
        return cls(
            transaction_id=transaction.transaction_id,
            payer_id=transaction.payer_id,
            payee_id=transaction.payee_id,
            amount=transaction.amount,
            hour=transaction.hour,
            day=transaction.day,
            channel=transaction.channel,
            trans_city=transaction.trans_city,
            device_id=transaction.device_id,
            is_new_device=transaction.is_new_device,
            ip_risk_score=transaction.ip_risk_score,
            payer_recent_txn_count=transaction.payer_recent_txn_count,
            payer_recent_amount=transaction.payer_recent_amount,
            payee_recent_inbound_count=transaction.payee_recent_inbound_count,
        )

    def to_transaction(self) -> Transaction:
        """View the request as an (unlabelled) transaction for feature extraction."""
        return Transaction(
            transaction_id=self.transaction_id,
            day=self.day,
            hour=self.hour,
            payer_id=self.payer_id,
            payee_id=self.payee_id,
            amount=self.amount,
            channel=self.channel,
            trans_city=self.trans_city,
            device_id=self.device_id,
            is_new_device=self.is_new_device,
            ip_risk_score=self.ip_risk_score,
            payer_recent_txn_count=self.payer_recent_txn_count,
            payer_recent_amount=self.payer_recent_amount,
            payee_recent_inbound_count=self.payee_recent_inbound_count,
            is_fraud=False,
            label_available_day=self.day,
        )


@dataclass
class PredictionResponse:
    """Result of one online fraud check."""

    transaction_id: str
    fraud_probability: float
    is_fraud_alert: bool
    threshold: float
    model_version: str
    latency_ms: float


@dataclass
class ModelServerConfig:
    """Configuration of the online feature assembly and alerting."""

    feature_table: str = "titant_features"
    #: Ordered embedding blocks: (set name, dimension) — must match training.
    embedding_specs: List[tuple] = field(default_factory=list)
    #: "payer", "payee" or "both" — must match the offline FeatureAssembler.
    embedding_side: str = "both"
    alert_threshold: float = 0.5
    sla_budget_ms: float = 50.0

    def validate(self) -> None:
        if self.embedding_side not in ("payer", "payee", "both"):
            raise ServingError("embedding_side must be 'payer', 'payee' or 'both'")
        if not 0.0 <= self.alert_threshold <= 1.0:
            raise ServingError("alert_threshold must be in [0, 1]")


class ModelServer:
    """One Model Server instance."""

    def __init__(
        self,
        hbase: HBaseClient,
        config: Optional[ModelServerConfig] = None,
    ) -> None:
        self.hbase = hbase
        self.config = config or ModelServerConfig()
        self.config.validate()
        self._model: Optional[BaseDetector] = None
        self._model_version: str = ""
        self.latency = LatencyTracker(sla_budget_ms=self.config.sla_budget_ms)
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Model lifecycle
    # ------------------------------------------------------------------
    def load_model(
        self,
        model: BaseDetector,
        *,
        version: str,
        threshold: Optional[float] = None,
        embedding_specs: Optional[Sequence[tuple]] = None,
        embedding_side: Optional[str] = None,
    ) -> None:
        """Hot-swap the served model (the periodic T+1 update)."""
        if not model.is_fitted:
            raise ServingError("cannot load an unfitted model into the Model Server")
        self._model = model
        self._model_version = version
        if threshold is not None:
            self.config.alert_threshold = float(threshold)
        if embedding_specs is not None:
            self.config.embedding_specs = [tuple(spec) for spec in embedding_specs]
        if embedding_side is not None:
            self.config.embedding_side = embedding_side
            self.config.validate()
        logger.info("model %s loaded (threshold %.3f)", version, self.config.alert_threshold)

    @property
    def model_version(self) -> str:
        return self._model_version

    @property
    def has_model(self) -> bool:
        return self._model is not None

    # ------------------------------------------------------------------
    # Online prediction
    # ------------------------------------------------------------------
    def predict(self, request: TransactionRequest) -> PredictionResponse:
        """Score one transaction request against the loaded model."""
        if self._model is None:
            raise ModelNotLoadedError("the Model Server has no model loaded")
        watch = Stopwatch().start()
        vector = self._assemble_features(request)
        probability = float(self._model.predict_proba(vector.reshape(1, -1))[0])
        latency_ms = watch.stop() * 1000.0
        self.latency.record(latency_ms)
        self.requests_served += 1
        return PredictionResponse(
            transaction_id=request.transaction_id,
            fraud_probability=probability,
            is_fraud_alert=probability >= self.config.alert_threshold,
            threshold=self.config.alert_threshold,
            model_version=self._model_version,
            latency_ms=latency_ms,
        )

    def predict_batch(self, requests: Sequence[TransactionRequest]) -> List[PredictionResponse]:
        return [self.predict(request) for request in requests]

    # ------------------------------------------------------------------
    # Feature assembly from Ali-HBase rows
    # ------------------------------------------------------------------
    def _assemble_features(self, request: TransactionRequest) -> np.ndarray:
        payer_profile = self._profile_from_hbase(request.payer_id)
        payee_profile = self._profile_from_hbase(request.payee_id)
        extractor = BasicFeatureExtractor(
            {payer_profile.user_id: payer_profile, payee_profile.user_id: payee_profile}
        )
        basic = extractor.extract_one(request.to_transaction())
        blocks = [basic]
        for set_name, dimension in self.config.embedding_specs:
            blocks.append(self._embedding_block(set_name, int(dimension), request))
        return np.concatenate(blocks)

    def _profile_from_hbase(self, user_id: str) -> UserProfile:
        row = self.hbase.get_or_default(
            self.config.feature_table, user_id, BASIC_FEATURES_FAMILY, default={}
        )
        return UserProfile(
            user_id=user_id,
            age=int(row.get("age", 35)),
            gender=Gender(row.get("gender", "U")),
            home_city=str(row.get("home_city", "city_000")),
            account_age_days=int(row.get("account_age_days", 365)),
            kyc_level=int(row.get("kyc_level", 2)),
            is_merchant=bool(row.get("is_merchant", False)),
            device_count=int(row.get("device_count", 1)),
            community=int(row.get("community", -1)),
        )

    def _embedding_block(
        self, set_name: str, dimension: int, request: TransactionRequest
    ) -> np.ndarray:
        sides: List[str]
        if self.config.embedding_side == "both":
            sides = ["payer", "payee"]
        else:
            sides = [self.config.embedding_side]
        pieces: List[np.ndarray] = []
        for side in sides:
            user_id = request.payer_id if side == "payer" else request.payee_id
            row = self.hbase.get_or_default(
                self.config.feature_table, user_id, EMBEDDINGS_FAMILY, default={}
            )
            vector = np.zeros(dimension)
            for dim in range(dimension):
                vector[dim] = float(row.get(f"{set_name}_{dim}", 0.0))
            pieces.append(vector)
        return np.concatenate(pieces)
