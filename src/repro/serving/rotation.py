"""Registry-driven hot model rotation across a live Model Server fleet.

The offline pipeline registers a new :class:`~repro.core.registry.ModelVersion`
every training day; this module is the control plane that moves the fleet to
it without dropping a request:

* **Atomic per-replica swap.**  ``ModelServer.load_model`` installs the model,
  its threshold and its feature plan as one immutable ``ServingModel`` —
  a replica is always serving either the old version or the new one, never a
  mix, and requests in flight between two replicas' swaps simply see two
  consistent versions.
* **Canary deploys.**  ``deploy(canary_fraction=...)`` rolls the new version
  onto only a deterministic prefix of the fleet; :meth:`FleetController.promote`
  finishes the rollout, :meth:`FleetController.rollback` re-installs an
  earlier registry version everywhere (canary included).
* **Shadow scoring.**  ``start_shadow`` mirrors live traffic onto a
  challenger version on every replica; ``stop_shadow`` returns the pooled
  champion-vs-challenger divergence report that gates promotion.

The replay test in ``tests/test_serving_runtime.py`` drives a rotation in the
middle of a live stream and asserts zero failed requests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.exceptions import ServingError
from repro.serving.model_server import ModelServer, ShadowReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.registry import ModelRegistry, ModelVersion


@dataclass
class RolloutReport:
    """What one control-plane action did to the fleet."""

    action: str  # "deploy", "promote" or "rollback"
    version: str
    replicas_updated: List[int]
    fleet_versions: List[str]

    @property
    def is_canary(self) -> bool:
        """True when the rollout left part of the fleet on another version."""
        return len(set(self.fleet_versions)) > 1


class FleetController:
    """Deploy / rollback / canary / shadow over a live Model Server fleet."""

    def __init__(self, fleet: Sequence[ModelServer], registry: "ModelRegistry") -> None:
        if not fleet:
            raise ServingError("FleetController needs at least one Model Server")
        self.fleet: List[ModelServer] = list(fleet)
        self.registry = registry
        self._canary_version: Optional[str] = None

    # ------------------------------------------------------------------
    def fleet_versions(self) -> List[str]:
        """The model version each replica is serving right now."""
        return [server.model_version for server in self.fleet]

    @property
    def canary_version(self) -> Optional[str]:
        """Version of an in-progress canary rollout (None when fully rolled)."""
        return self._canary_version

    def _load(self, server: ModelServer, version: "ModelVersion") -> None:
        if version.plan is not None:
            server.load_model(
                version.model,
                version=version.version,
                threshold=version.threshold,
                plan=version.plan,
            )
        else:
            server.load_model(
                version.model,
                version=version.version,
                threshold=version.threshold,
                embedding_specs=version.embedding_specs,
                embedding_side=version.embedding_side,
            )

    # ------------------------------------------------------------------
    def deploy(
        self,
        version: Optional[str] = None,
        *,
        canary_fraction: Optional[float] = None,
    ) -> RolloutReport:
        """Roll a registry version onto the fleet (default: the latest).

        With ``canary_fraction`` only ``ceil(fraction × fleet)`` replicas
        (a deterministic prefix) receive the new version; the rest keep
        serving the incumbent until :meth:`promote` or :meth:`rollback`.
        """
        target = self.registry.get(version) if version is not None else self.registry.latest()
        if canary_fraction is None:
            replicas = list(range(len(self.fleet)))
            self._canary_version = None
        else:
            if not 0.0 < canary_fraction <= 1.0:
                raise ServingError("canary_fraction must be in (0, 1]")
            count = min(len(self.fleet), math.ceil(canary_fraction * len(self.fleet)))
            replicas = list(range(count))
            self._canary_version = target.version if count < len(self.fleet) else None
        for index in replicas:
            self._load(self.fleet[index], target)
        return RolloutReport(
            action="deploy",
            version=target.version,
            replicas_updated=replicas,
            fleet_versions=self.fleet_versions(),
        )

    def promote(self) -> RolloutReport:
        """Finish an in-progress canary: roll its version onto every replica."""
        if self._canary_version is None:
            raise ServingError("no canary rollout in progress")
        target = self.registry.get(self._canary_version)
        updated = [
            index
            for index, server in enumerate(self.fleet)
            if server.model_version != target.version
        ]
        for index in updated:
            self._load(self.fleet[index], target)
        self._canary_version = None
        return RolloutReport(
            action="promote",
            version=target.version,
            replicas_updated=updated,
            fleet_versions=self.fleet_versions(),
        )

    def rollback(self, *, steps: int = 1) -> RolloutReport:
        """Re-install the version ``steps`` registrations before the latest.

        Clears any in-progress canary — a rollback is a fleet-wide statement
        that the newest version is not trusted.
        """
        target = self.registry.rollback(steps=steps)
        self._canary_version = None
        for server in self.fleet:
            self._load(server, target)
        return RolloutReport(
            action="rollback",
            version=target.version,
            replicas_updated=list(range(len(self.fleet))),
            fleet_versions=self.fleet_versions(),
        )

    # ------------------------------------------------------------------
    def start_shadow(self, version: str) -> None:
        """Shadow-score a challenger registry version on every replica."""
        target = self.registry.get(version)
        for server in self.fleet:
            if target.plan is not None:
                server.load_shadow_model(
                    target.model,
                    version=target.version,
                    threshold=target.threshold,
                    plan=target.plan,
                )
            else:
                server.load_shadow_model(
                    target.model,
                    version=target.version,
                    threshold=target.threshold,
                    embedding_specs=target.embedding_specs,
                    embedding_side=target.embedding_side,
                )

    def stop_shadow(self) -> Optional[ShadowReport]:
        """Stop shadow scoring and pool the fleet's divergence stats."""
        return self._pool([server.clear_shadow_model() for server in self.fleet])

    def shadow_report(self) -> Optional[ShadowReport]:
        """Pooled divergence so far without stopping the shadow."""
        return self._pool([server.shadow_report() for server in self.fleet])

    @staticmethod
    def _pool(per_replica: Sequence[Optional[ShadowReport]]) -> Optional[ShadowReport]:
        """Request-weighted merge of per-replica divergence reports."""
        reports = [r for r in per_replica if r is not None and r.requests > 0]
        if not reports:
            return None
        requests = sum(report.requests for report in reports)
        return ShadowReport(
            champion_version=reports[0].champion_version,
            challenger_version=reports[0].challenger_version,
            requests=requests,
            mean_abs_divergence=sum(
                report.mean_abs_divergence * report.requests for report in reports
            )
            / requests,
            max_abs_divergence=max(report.max_abs_divergence for report in reports),
            decision_flips=sum(report.decision_flips for report in reports),
        )
