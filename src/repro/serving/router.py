"""Request routing across the Model Server fleet.

The pre-sharding front end balanced requests round-robin, which spreads load
perfectly but scatters each account's requests over every replica: every
replica's client-side :class:`~repro.hbase.cache.RowCache` ends up caching
every hot account (R× the compulsory misses fleet-wide) and no replica's
:class:`~repro.features.streaming.SlidingWindowAggregator` state stays hot.

:class:`ServingRouter` replaces that with consistent-hash sharding by
*account* (the payer — the side whose behaviour the fraud check is about):
every request of one account lands on the same replica, so that replica's
cached rows for the account stay warm, and adding/removing a replica remaps
only the accounts owned by the touched ring segment (~1/R of the keyspace)
instead of reshuffling everything.

``bench_serving_latency.py`` measures the resulting RowCache hit-rate lift of
sharded routing over round-robin on the same replay.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import TYPE_CHECKING, Dict, List, Sequence

from repro.exceptions import ServingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.model_server import ModelServer


def _stable_hash(key: str) -> int:
    """64-bit hash that is stable across processes (unlike builtin ``hash``)."""
    return int.from_bytes(hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big")


class RoundRobinRouter:
    """Stateless rotation over the fleet — the pre-sharding baseline policy."""

    def __init__(self, num_replicas: int) -> None:
        if num_replicas < 1:
            raise ServingError("a router needs at least one replica")
        self.num_replicas = num_replicas
        self._next = 0

    def route(self, account_id: str) -> int:
        """Next replica in rotation (the account id is ignored)."""
        replica = self._next % self.num_replicas
        self._next += 1
        return replica


class ServingRouter:
    """Consistent-hash router sharding requests by account id.

    Each replica owns ``virtual_nodes`` points on a 64-bit hash ring; an
    account maps to the replica owning the first ring point at or after the
    account's hash.  Virtual nodes keep the per-replica keyspace share close
    to uniform, and :meth:`remove_replica` / :meth:`add_replica` move only the
    ring segments of the touched replica — the property that makes fleet
    resizes cheap for the replicas' warm caches.
    """

    def __init__(self, num_replicas: int, *, virtual_nodes: int = 64) -> None:
        if num_replicas < 1:
            raise ServingError("a router needs at least one replica")
        if virtual_nodes < 1:
            raise ServingError("virtual_nodes must be at least 1")
        self.virtual_nodes = int(virtual_nodes)
        self._ring_points: List[int] = []
        self._ring_owners: List[int] = []
        self._replicas: List[int] = []
        for replica in range(num_replicas):
            self.add_replica(replica)

    # ------------------------------------------------------------------
    @property
    def num_replicas(self) -> int:
        """Number of replicas currently on the ring."""
        return len(self._replicas)

    def replicas(self) -> List[int]:
        """The replica indices currently on the ring, ascending."""
        return sorted(self._replicas)

    def add_replica(self, replica: int) -> None:
        """Insert a replica's virtual nodes into the ring."""
        if replica in self._replicas:
            raise ServingError(f"replica {replica} is already on the ring")
        self._replicas.append(replica)
        for vnode in range(self.virtual_nodes):
            point = _stable_hash(f"replica:{replica}:vnode:{vnode}")
            index = bisect.bisect_left(self._ring_points, point)
            self._ring_points.insert(index, point)
            self._ring_owners.insert(index, replica)

    def remove_replica(self, replica: int) -> None:
        """Drop a replica; only its accounts remap (to the next ring owners)."""
        if replica not in self._replicas:
            raise ServingError(f"replica {replica} is not on the ring")
        if len(self._replicas) == 1:
            raise ServingError("cannot remove the last replica")
        self._replicas.remove(replica)
        keep = [i for i, owner in enumerate(self._ring_owners) if owner != replica]
        self._ring_points = [self._ring_points[i] for i in keep]
        self._ring_owners = [self._ring_owners[i] for i in keep]

    # ------------------------------------------------------------------
    def route(self, account_id: str) -> int:
        """The replica owning ``account_id`` (deterministic across calls)."""
        point = _stable_hash(account_id)
        index = bisect.bisect_left(self._ring_points, point)
        if index == len(self._ring_points):  # wrap around the ring
            index = 0
        return self._ring_owners[index]

    def shard_map(self, account_ids: Sequence[str]) -> Dict[int, List[str]]:
        """Group accounts by owning replica (diagnostics / balance checks)."""
        shards: Dict[int, List[str]] = {}
        for account_id in account_ids:
            shards.setdefault(self.route(account_id), []).append(account_id)
        return shards


def fleet_cache_stats(model_servers: Sequence["ModelServer"]) -> Dict[str, float]:
    """Aggregate RowCache hit/miss statistics across a Model Server fleet.

    Each server holds its own HBase connection (its own client-side cache in
    a real deployment), so fleet-wide hit rate must pool the raw counts —
    averaging per-server hit rates would weight idle replicas equally with
    loaded ones.
    """
    hits = misses = rows = 0.0
    for server in model_servers:
        stats = server.hbase.row_cache_stats()
        hits += stats["hits"]
        misses += stats["misses"]
        rows += stats["rows"]
    total = hits + misses
    return {
        "rows": rows,
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / total if total else 0.0,
    }
