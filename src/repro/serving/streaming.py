"""Write-through of streaming aggregates into the online feature store.

The :class:`~repro.features.streaming.SlidingWindowAggregator` holds the
in-memory window state; this module connects it to Ali-HBase.  Every
transaction the Alipay front end ingests is folded into the aggregator and the
two touched accounts' fresh aggregate rows are written through to the
``transaction_aggregates`` column family.  Because every
:meth:`HBaseClient.put` invalidates the client-side TTL row cache for that
row, the *next* fraud check on either account reads the updated aggregates —
no stale-row serve, regardless of the cache TTL.

Writes use a monotonically increasing version number (starting above the
offline bulk-load version), so "latest" reads always observe the streaming
state, and the write-ahead log orders the updates for crash recovery: a
recovered region server replays the WAL and ends up with bit-identical
aggregate rows.

Cost note: while the engine's *ingest* is O(1) amortised, each write-through
materialises the two touched accounts' full rows (folding their in-window
buckets and payer sets), so per-event cost is proportional to those accounts'
window state.  That is the price of serving plain scalar rows to any HBase
reader; a deployment dominated by hot merchants with huge payer sets would
delta-encode the set cells instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Set

from repro.datagen.schema import Transaction
from repro.features.streaming import SlidingWindowAggregator
from repro.hbase.client import AGGREGATES_FAMILY, HBaseClient

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.embedding_refresh import EmbeddingRefresher
    from repro.serving.model_server import TransactionRequest


class StreamingFeatureUpdater:
    """Folds ingested transactions into the aggregator and Ali-HBase.

    Parameters
    ----------
    aggregator:
        The sliding-window engine holding the event-time state (usually
        pre-seeded by replaying the training history, so online serving
        starts from exactly the state the offline pipeline published).
    hbase / table_name:
        Where the per-user aggregate rows live.
    start_version:
        Versions of write-through puts are ``start_version + n`` for the
        n-th ingested event.  Pass the offline bulk-load version so streaming
        rows always supersede the published snapshot.
    refresh_interval_seconds:
        A stored row is anchored at the moment it was written (the account's
        latest transaction), so an account that goes *idle* keeps serving
        that snapshot even after its events age past the window edge.  With
        a refresh interval set, every advance of the event-time watermark by
        at least this much re-publishes all tracked rows at the new
        watermark, bounding idle-account staleness to the interval (at an
        O(accounts) write cost per refresh).  ``None`` (default) disables the
        sweep — appropriate when the window is much longer than the serving
        horizon, where decay between touches is negligible.
    embedding_refresher:
        Optional :class:`~repro.serving.embedding_refresh.EmbeddingRefresher`.
        When attached, every ingested transaction is also folded into the
        cumulative transaction network and its endpoint accounts are queued
        for Structure2Vec re-embedding, keeping the embeddings column family
        convergent with the growing graph alongside the aggregate rows.
    """

    def __init__(
        self,
        aggregator: SlidingWindowAggregator,
        hbase: HBaseClient,
        table_name: str = "titant_features",
        *,
        start_version: int = 0,
        refresh_interval_seconds: Optional[float] = None,
        embedding_refresher: Optional["EmbeddingRefresher"] = None,
    ) -> None:
        self.aggregator = aggregator
        self.hbase = hbase
        self.table_name = table_name
        self._version = int(start_version)
        self.events_observed = 0
        self.refresh_interval_seconds = refresh_interval_seconds
        self.refreshes = 0
        self._last_refresh_watermark: Optional[float] = None
        self.embedding_refresher = embedding_refresher
        #: Accounts with a written aggregate row — refreshes must re-anchor
        #: these even after the aggregator prunes an idle account entirely.
        self._published: Set[str] = set()

    @property
    def current_version(self) -> int:
        """Version of the most recent write-through put."""
        return self._version

    def observe_transaction(self, transaction: Transaction) -> bool:
        """Ingest one transaction and write both accounts' rows through.

        Returns False when the event was beyond the aggregator's retention
        horizon (too late to ever matter) — nothing is written in that case.
        """
        if not self.aggregator.ingest(transaction):
            return False
        self.events_observed += 1
        self._version += 1
        for user_id in (transaction.payer_id, transaction.payee_id):
            self.hbase.put(
                self.table_name,
                user_id,
                AGGREGATES_FAMILY,
                self.aggregator.hbase_row(user_id),
                version=self._version,
            )
            self._published.add(user_id)
        if self.embedding_refresher is not None:
            self.embedding_refresher.observe_transaction(transaction)
        self._maybe_refresh()
        return True

    def _maybe_refresh(self) -> None:
        if self.refresh_interval_seconds is None:
            return
        watermark = self.aggregator.watermark
        if self._last_refresh_watermark is None:
            self._last_refresh_watermark = watermark
            return
        if watermark - self._last_refresh_watermark >= self.refresh_interval_seconds:
            self.publish_snapshot(as_of=watermark)
            self._last_refresh_watermark = watermark
            self.refreshes += 1

    def observe_stream(self, transactions: Iterable[Transaction]) -> int:
        """Ingest a lazily generated transaction stream, one event at a time.

        Accepts any iterable — in particular a
        :class:`~repro.datagen.stream.TransactionStream` — and never
        materializes it; memory stays bounded by the aggregator's window
        state.  Events must arrive in event-time order (within the
        aggregator's lateness bound); the stream classes emit that order
        directly.  Returns the number of events actually ingested (late
        events beyond the retention horizon are skipped, as in
        :meth:`observe_transaction`).
        """
        ingested = 0
        for transaction in transactions:
            if self.observe_transaction(transaction):
                ingested += 1
        return ingested

    def observe_request(self, request: "TransactionRequest") -> bool:
        """Ingest an online transaction request (the Alipay-server hook)."""
        return self.observe_transaction(request.to_transaction())

    def publish_snapshot(self, *, as_of: Optional[float] = None, version: Optional[int] = None) -> int:
        """Bulk-write every tracked account's current row (bootstrap/repair).

        Also re-anchors accounts whose rows were written earlier but whose
        window state has since been pruned away entirely (their row becomes
        the all-zero cold row) — without this, an idle account's last
        non-zero snapshot would be served forever.
        """
        if version is None:
            self._version += 1
            version = self._version
        else:
            self._version = max(self._version, int(version))
        rows = self.aggregator.snapshot_rows(as_of=as_of)
        stale = self._published - rows.keys()
        for user_id in stale:
            rows[user_id] = self.aggregator.hbase_row(user_id, as_of=as_of)
        self._published.update(rows)
        # Once re-anchored to the cold all-zero row, a pruned account needs
        # no further sweeps (it re-enters on its next transaction) — without
        # this, sweep cost would grow with lifetime accounts, not active ones.
        self._published.difference_update(stale)
        return self.hbase.bulk_load(
            self.table_name, AGGREGATES_FAMILY, rows, version=version
        )
