"""Shared fixtures.

The expensive artefacts (a synthetic world, its T+1 slice, the transaction
network and the extracted feature matrices) are built once per test session
and shared, so the suite stays fast while every layer is exercised against
realistic data.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

import numpy as np
import pytest

from repro.datagen import generate_world
from repro.datagen.datasets import DatasetBuilder, small_world_config
from repro.datagen.profiles import ProfileConfig
from repro.datagen.transactions import WorldConfig
from repro.features.basic import BasicFeatureExtractor
from repro.graph.builder import build_network


TEST_NETWORK_DAYS = 18
TEST_TRAIN_DAYS = 6

# ---------------------------------------------------------------------------
# Determinism sanitizer support (scripts/run_determinism_check.py)
# ---------------------------------------------------------------------------

#: ``"<test nodeid>::<name>" -> checksum`` recorded by the ``record_checksum``
#: fixture during this session.
_RECORDED_CHECKSUMS: Dict[str, str] = {}


@pytest.fixture
def record_checksum(request):
    """Record named checksums for the determinism sanitizer.

    Tests marked ``@pytest.mark.determinism`` call
    ``record_checksum("name", digest)`` with a digest of their
    deterministic output.  When ``REPRO_CHECKSUM_FILE`` is set (by
    ``scripts/run_determinism_check.py``), every recorded value is dumped
    there at session end; the sanitizer runs the tagged subset twice under
    different ``PYTHONHASHSEED`` values and fails if any checksum differs —
    the dynamic complement of the static ``iteration-order`` lint rule.
    """

    def _record(name: str, value) -> None:
        _RECORDED_CHECKSUMS[f"{request.node.nodeid}::{name}"] = str(value)

    return _record


def pytest_sessionfinish(session, exitstatus):
    out = os.environ.get("REPRO_CHECKSUM_FILE")
    if out:
        payload = dict(sorted(_RECORDED_CHECKSUMS.items()))
        Path(out).write_text(json.dumps(payload, indent=2) + "\n")


@pytest.fixture(scope="session")
def world():
    """A small but fully featured synthetic world (session-scoped)."""
    config = WorldConfig(
        profile=ProfileConfig(
            num_users=500,
            num_communities=8,
            fraudster_fraction=0.035,
            seed=101,
        ),
        num_days=30,
        transactions_per_user_per_day=0.5,
        seed=101,
    )
    return generate_world(config)


@pytest.fixture(scope="session")
def dataset(world):
    """One T+1 dataset slice of the session world."""
    builder = DatasetBuilder(world, network_days=TEST_NETWORK_DAYS, train_days=TEST_TRAIN_DAYS)
    return builder.build(builder.earliest_test_day())


@pytest.fixture(scope="session")
def network(dataset):
    """Transaction network built from the slice's 18-day history."""
    return build_network(dataset.network_transactions)


@pytest.fixture(scope="session")
def feature_matrices(world, dataset):
    """(train, test) basic-feature matrices of the session slice."""
    extractor = BasicFeatureExtractor(world.profiles_by_id)
    train = extractor.extract(dataset.train_transactions)
    test = extractor.extract(dataset.test_transactions)
    return train, test


@pytest.fixture(scope="session")
def small_classification_data():
    """A tiny deterministic binary classification problem with real signal."""
    rng = np.random.default_rng(7)
    num_rows = 600
    features = rng.normal(size=(num_rows, 6))
    logits = 1.8 * features[:, 0] - 1.2 * features[:, 1] + 0.6 * features[:, 2] * features[:, 3]
    labels = (logits + rng.normal(scale=0.5, size=num_rows) > 0.8).astype(float)
    return features, labels
