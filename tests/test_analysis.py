"""Tests of the invariant linter (src/repro/analysis + scripts/lint_repo.py).

Each of the five rules gets known-bad and known-good fixture snippets; the
baseline does a suppression round-trip; the JSON reporter's schema is
pinned; the layering checker's import graph is inspected directly; and the
CLI is exercised end to end — including the acceptance requirement that a
violation of any invariant class exits non-zero with ``rule id`` +
``file:line`` in the output.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    all_rule_ids,
    default_checkers,
    render_json,
    run_analysis,
)
from repro.analysis.checkers.layering import LayeringChecker

REPO_ROOT = Path(__file__).resolve().parent.parent


def analyze(tmp_path: Path, files: dict, *, rules=None, checkers=None):
    """Write ``{relpath: source}`` under ``tmp/src`` and run the linter."""
    src = tmp_path / "src"
    for rel, source in files.items():
        path = src / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_analysis(
        src,
        repo_root=tmp_path,
        src_root=src,
        checkers=checkers if checkers is not None else default_checkers(rules),
    )


def rules_of(report):
    return sorted({f.rule for f in report.findings})


# ---------------------------------------------------------------------------
# Rule 1: rng-discipline
# ---------------------------------------------------------------------------


class TestRngDiscipline:
    def test_flags_global_state_numpy_calls(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/models/bad.py": """
                import numpy as np
                x = np.random.rand(3)
                np.random.seed(4)
                """
            },
            rules=["rng-discipline"],
        )
        assert len(report.findings) == 2
        assert all(f.rule == "rng-discipline" for f in report.findings)
        assert report.findings[0].line == 3

    def test_flags_unseeded_and_stray_default_rng(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/models/bad.py": """
                import numpy as np
                from numpy.random import default_rng
                a = np.random.default_rng()
                b = default_rng(7)
                """
            },
            rules=["rng-discipline"],
        )
        messages = [f.message for f in sorted(report.findings)]
        assert len(messages) == 2
        assert "unseeded" in messages[0]
        assert "ensure_rng" in messages[1]

    def test_flags_stdlib_random_import(self, tmp_path):
        report = analyze(
            tmp_path,
            {"repro/datagen/bad.py": "import random\nrandom.shuffle([1, 2])\n"},
            rules=["rng-discipline"],
        )
        assert any("stdlib random" in f.message for f in report.findings)

    def test_repro_rng_module_is_exempt(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/rng.py": """
                import numpy as np
                def ensure_rng(seed=None):
                    return np.random.default_rng(seed)
                """
            },
            rules=["rng-discipline"],
        )
        assert report.findings == []

    def test_seeded_generator_usage_is_clean(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/models/good.py": """
                from repro.rng import ensure_rng
                def draw(seed):
                    rng = ensure_rng(seed)
                    return rng.normal(size=4)
                """
            },
            rules=["rng-discipline"],
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# Rule 2: clock-discipline
# ---------------------------------------------------------------------------


class TestClockDiscipline:
    def test_flags_wall_clock_reads_and_sleeps(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/serving/bad.py": """
                import time
                from datetime import datetime
                def handle(request):
                    start = time.time()
                    time.sleep(0.1)
                    stamp = datetime.now()
                    return start, stamp
                """
            },
            rules=["clock-discipline"],
        )
        assert len(report.findings) == 3
        assert {f.line for f in report.findings} == {5, 6, 7}

    def test_wall_clock_allowlist_modules_are_exempt(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/serving/async_server.py": "import time\nnow = time.monotonic()\n",
                "repro/logging_utils.py": "import time\nstart = time.perf_counter()\n",
            },
            rules=["clock-discipline"],
        )
        assert report.findings == []

    def test_explicit_now_argument_is_clean(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/serving/good.py": """
                def admit(request, *, now_ms: float) -> bool:
                    return now_ms >= 0
                """
            },
            rules=["clock-discipline"],
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# Rule 3: shm-lifecycle
# ---------------------------------------------------------------------------


class TestShmLifecycle:
    def test_flags_unguarded_allocation(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/kunpeng/bad.py": """
                from multiprocessing import shared_memory
                def leak(n):
                    segment = shared_memory.SharedMemory(create=True, size=n)
                    return n
                """
            },
            rules=["shm-lifecycle"],
        )
        assert len(report.findings) == 1
        assert report.findings[0].rule == "shm-lifecycle"
        assert report.findings[0].line == 4

    def test_try_finally_and_with_are_guarded(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/kunpeng/good.py": """
                from multiprocessing import shared_memory
                def scoped(n):
                    segment = shared_memory.SharedMemory(create=True, size=n)
                    try:
                        return segment.size
                    finally:
                        segment.close()
                        segment.unlink()
                def managed(manager, n):
                    with manager:
                        view = manager.allocate("k", (n,))
                    return None
                """
            },
            rules=["shm-lifecycle"],
        )
        assert report.findings == []

    def test_ownership_transfer_by_return_is_guarded(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/kunpeng/good.py": """
                from multiprocessing import shared_memory
                def attach(name):
                    segment = shared_memory.SharedMemory(name=name)
                    return segment
                """
            },
            rules=["shm-lifecycle"],
        )
        assert report.findings == []

    def test_atexit_registered_cleanup_class_is_guarded(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/kunpeng/good.py": """
                import atexit
                from multiprocessing import shared_memory
                class Manager:
                    def __init__(self):
                        self._segments = {}
                        atexit.register(self.close)
                    def allocate(self, key, size):
                        segment = shared_memory.SharedMemory(create=True, size=size)
                        self._segments[key] = segment
                        return segment
                    def close(self):
                        for segment in self._segments.values():
                            segment.close()
                            segment.unlink()
                """
            },
            rules=["shm-lifecycle"],
        )
        assert report.findings == []

    def test_class_without_cleanup_is_flagged(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/kunpeng/bad.py": """
                from multiprocessing import shared_memory
                class Leaky:
                    def __init__(self):
                        self._segments = {}
                    def allocate(self, key, size):
                        self._segments[key] = shared_memory.SharedMemory(
                            create=True, size=size
                        )
                """
            },
            rules=["shm-lifecycle"],
        )
        assert len(report.findings) == 1

    def test_real_parallel_module_is_clean(self):
        report = run_analysis(
            REPO_ROOT / "src" / "repro" / "kunpeng" / "parallel.py",
            repo_root=REPO_ROOT,
            src_root=REPO_ROOT / "src",
            checkers=default_checkers(["shm-lifecycle"]),
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# Rule 4: layering
# ---------------------------------------------------------------------------


class TestLayering:
    def test_offline_layers_must_not_import_serving(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/datagen/bad.py": "from repro.serving.router import ServingRouter\n",
                "repro/features/bad.py": "import repro.serving.coalescer\n",
            },
            rules=["layering"],
        )
        assert len(report.findings) == 2
        assert all("must not import 'repro.serving'" in f.message for f in report.findings)

    def test_serving_must_not_import_maxcompute(self, tmp_path):
        report = analyze(
            tmp_path,
            {"repro/serving/bad.py": "from repro.maxcompute.client import MaxComputeClient\n"},
            rules=["layering"],
        )
        assert len(report.findings) == 1
        assert "'repro.maxcompute'" in report.findings[0].message

    def test_relative_imports_are_resolved(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/__init__.py": "",
                "repro/features/__init__.py": "",
                "repro/features/bad.py": "from ..serving import router\n",
            },
            rules=["layering"],
        )
        assert len(report.findings) == 1
        assert report.findings[0].path == "src/repro/features/bad.py"

    def test_nothing_imports_benchmarks_or_tests(self, tmp_path):
        report = analyze(
            tmp_path,
            {"repro/core/bad.py": "import benchmarks.bench_fig10_scalability\nimport tests.conftest\n"},
            rules=["layering"],
        )
        assert len(report.findings) == 2

    def test_allowed_direction_is_clean(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/serving/good.py": "from repro.features.plan import FeaturePlan\n",
                "repro/core/good.py": "from repro.maxcompute.client import MaxComputeClient\n",
            },
            rules=["layering"],
        )
        assert report.findings == []

    def test_import_graph_construction(self, tmp_path):
        checker = LayeringChecker()
        analyze(
            tmp_path,
            {
                "repro/features/__init__.py": "",
                "repro/features/plan.py": "from repro.rng import ensure_rng\nimport numpy as np\n",
                "repro/features/other.py": "from .plan import thing\n",
            },
            checkers=[checker],
        )
        assert checker.graph["repro.features.plan"] == {"repro.rng", "numpy"}
        assert checker.graph["repro.features.other"] == {"repro.features.plan"}

    def test_real_tree_has_no_layering_violations(self):
        report = run_analysis(
            REPO_ROOT / "src" / "repro",
            repo_root=REPO_ROOT,
            src_root=REPO_ROOT / "src",
            checkers=default_checkers(["layering"]),
        )
        assert report.findings == []


# ---------------------------------------------------------------------------
# Rule 5: iteration-order
# ---------------------------------------------------------------------------


class TestIterationOrder:
    def test_flags_iteration_over_set_expressions(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/datagen/bad.py": """
                def emit(accounts):
                    out = []
                    for account in set(accounts):
                        out.append(account)
                    doubled = [a for a in {1, 2, 3}]
                    return out, doubled
                """
            },
            rules=["iteration-order"],
        )
        assert len(report.findings) == 2
        assert all("PYTHONHASHSEED" in f.message for f in report.findings)

    def test_flags_unsorted_listdir(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/datagen/bad.py": """
                import os
                def shards(path):
                    return [os.path.join(path, name) for name in os.listdir(path)]
                """
            },
            rules=["iteration-order"],
        )
        assert len(report.findings) == 1
        assert "os.listdir" in report.findings[0].message

    def test_sorted_wrappers_are_clean(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/datagen/good.py": """
                import os
                def emit(accounts, path):
                    for account in sorted(set(accounts)):
                        yield account
                    for name in sorted(os.listdir(path)):
                        yield name
                    count = len(os.listdir(path))
                    yield count
                """
            },
            rules=["iteration-order"],
        )
        assert report.findings == []

    def test_ignore_comment_suppresses_line(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/datagen/ok.py": """
                def emit(accounts):
                    for account in set(accounts):  # repro-lint: ignore[iteration-order]
                        yield account
                """
            },
            rules=["iteration-order"],
        )
        assert report.findings == []

    def test_ignore_comment_is_rule_specific(self, tmp_path):
        report = analyze(
            tmp_path,
            {
                "repro/datagen/bad.py": """
                def emit(accounts):
                    for account in set(accounts):  # repro-lint: ignore[clock-discipline]
                        yield account
                """
            },
            rules=["iteration-order"],
        )
        assert len(report.findings) == 1


# ---------------------------------------------------------------------------
# Baseline suppression round-trip
# ---------------------------------------------------------------------------


class TestBaseline:
    BAD = {"repro/models/bad.py": "import numpy as np\nx = np.random.rand(3)\n"}

    def test_round_trip_suppresses_and_detects_stale(self, tmp_path):
        report = analyze(tmp_path, self.BAD, rules=["rng-discipline"])
        assert len(report.findings) == 1

        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(report.findings, reason="known legacy draw").save(baseline_path)
        baseline = Baseline.load(baseline_path)
        assert baseline.entries[0].reason == "known legacy draw"

        suppressed_report = run_analysis(
            tmp_path / "src",
            repo_root=tmp_path,
            src_root=tmp_path / "src",
            checkers=default_checkers(["rng-discipline"]),
            baseline=baseline,
        )
        assert suppressed_report.findings == []
        assert len(suppressed_report.suppressed) == 1
        assert suppressed_report.stale_baseline == []

        # Fix the violation: the entry must surface as stale, not linger.
        (tmp_path / "src" / "repro" / "models" / "bad.py").write_text(
            "from repro.rng import ensure_rng\n"
        )
        fixed_report = run_analysis(
            tmp_path / "src",
            repo_root=tmp_path,
            src_root=tmp_path / "src",
            checkers=default_checkers(["rng-discipline"]),
            baseline=baseline,
        )
        assert fixed_report.findings == []
        assert len(fixed_report.stale_baseline) == 1

    def test_baseline_matching_ignores_line_numbers(self, tmp_path):
        report = analyze(tmp_path, self.BAD, rules=["rng-discipline"])
        baseline = Baseline.from_findings(report.findings)
        shifted = Finding(
            path=report.findings[0].path,
            line=report.findings[0].line + 40,
            rule=report.findings[0].rule,
            message=report.findings[0].message,
        )
        assert baseline.suppresses(shifted)

    def test_missing_baseline_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert baseline.entries == []


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


class TestReporters:
    def test_json_schema(self):
        findings = [
            Finding(path="b.py", line=2, rule="layering", message="nope"),
            Finding(path="a.py", line=9, rule="rng-discipline", message="bad draw"),
        ]
        payload = json.loads(render_json(findings, tool="lint"))
        assert payload["schema_version"] == 1
        assert payload["tool"] == "lint"
        assert payload["counts"] == {"findings": 2, "suppressed": 0, "stale_baseline": 0}
        assert [f["path"] for f in payload["findings"]] == ["a.py", "b.py"]
        assert set(payload["findings"][0]) == {"rule", "path", "line", "message"}
        assert payload["suppressed"] == [] and payload["stale_baseline"] == []

    def test_text_format_has_rule_and_location(self):
        finding = Finding(path="src/x.py", line=12, rule="layering", message="bad edge")
        assert finding.format() == "src/x.py:12: [layering] bad edge"

    def test_finding_dict_round_trip(self):
        finding = Finding(path="src/x.py", line=3, rule="shm-lifecycle", message="leak")
        assert Finding.from_dict(finding.to_dict()) == finding


# ---------------------------------------------------------------------------
# CLI (scripts/lint_repo.py)
# ---------------------------------------------------------------------------

#: One known-bad snippet per invariant class, for the acceptance criterion.
VIOLATIONS = {
    "rng-discipline": "import numpy as np\nx = np.random.rand(3)\n",
    "clock-discipline": "import time\nnow = time.time()\n",
    "shm-lifecycle": (
        "from multiprocessing import shared_memory\n"
        "def leak(n):\n"
        "    segment = shared_memory.SharedMemory(create=True, size=n)\n"
        "    return n\n"
    ),
    "layering": "from repro.serving import router\n",
    "iteration-order": "def f(xs):\n    return [x for x in set(xs)]\n",
}

#: Layer whose rules make each snippet a violation.
VIOLATION_DIRS = {
    "rng-discipline": "repro/models",
    "clock-discipline": "repro/serving",
    "shm-lifecycle": "repro/kunpeng",
    "layering": "repro/features",
    "iteration-order": "repro/datagen",
}


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "lint_repo.py"), *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )


class TestLintRepoCli:
    def test_merged_tree_is_clean(self):
        result = run_cli("--check")
        assert result.returncode == 0, result.stdout + result.stderr

    @pytest.mark.parametrize("rule", sorted(VIOLATIONS))
    def test_each_invariant_class_fails_with_rule_and_location(self, rule, tmp_path):
        bad = tmp_path / "src" / VIOLATION_DIRS[rule] / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(VIOLATIONS[rule])
        result = run_cli("--no-baseline", str(bad))
        assert result.returncode == 1, result.stdout + result.stderr
        assert f"[{rule}]" in result.stdout
        # file:line anchor present
        assert any(
            line.startswith(bad.as_posix()) and ":" in line
            for line in result.stdout.splitlines()
        ), result.stdout

    def test_json_output_parses(self):
        result = run_cli("--json")
        assert result.returncode == 0
        payload = json.loads(result.stdout)
        assert payload["schema_version"] == 1

    def test_unknown_rule_errors(self):
        result = run_cli("--rules", "not-a-rule")
        assert result.returncode != 0

    def test_list_rules_names_all_five(self):
        result = run_cli("--list-rules")
        assert result.returncode == 0
        for rule in VIOLATIONS:
            assert rule in result.stdout

    def test_registry_exposes_exactly_the_bundled_rules(self):
        assert all_rule_ids() == sorted(VIOLATIONS)
