"""Tests of the asyncio serving front end (PR 6 tentpole, serving half).

The simulated-clock coalescer tests live in ``test_serving_runtime.py``;
here the same :class:`~repro.serving.coalescer.RequestCoalescer` is driven
by a real event loop: concurrent awaiters, a wall-clock flush timer, and the
``clock="wall"`` replay entry point.  The suite has no pytest-asyncio
dependency — each test runs its coroutine with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.registry import ModelRegistry, ModelVersion
from repro.exceptions import ServingError
from repro.hbase import HBaseClient
from repro.hbase.client import BASIC_FEATURES_FAMILY
from repro.models.gbdt import GradientBoostingClassifier
from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    AlipayServer,
    AsyncServingFrontEnd,
    CoalescerConfig,
    FleetController,
    ModelServer,
    ModelServerConfig,
    TransactionRequest,
)


@pytest.fixture(scope="module")
def async_fleet(world, dataset, feature_matrices):
    """A 2-replica fleet + registry, shared by the event-loop tests."""
    train, _ = feature_matrices
    model = GradientBoostingClassifier(num_trees=10, seed=0).fit(train.values, train.labels)
    hbase = HBaseClient()
    hbase.create_feature_store()
    for profile in world.profiles:
        hbase.put(
            "titant_features",
            profile.user_id,
            BASIC_FEATURES_FAMILY,
            {
                "age": profile.age,
                "gender": profile.gender.value,
                "home_city": profile.home_city,
                "account_age_days": profile.account_age_days,
                "kyc_level": profile.kyc_level,
                "is_merchant": profile.is_merchant,
                "device_count": profile.device_count,
                "community": profile.community,
            },
            version=dataset.spec.test_day,
        )
    fleet = [ModelServer(hbase.connection(), ModelServerConfig()) for _ in range(2)]
    registry = ModelRegistry()
    registry.register(
        ModelVersion(version="v1", model=model, threshold=0.5, feature_names=[])
    )
    FleetController(fleet, registry).deploy("v1")
    return fleet


def _fresh_server(async_fleet, **kwargs) -> AlipayServer:
    return AlipayServer(async_fleet, **kwargs)


def _requests(dataset, count, *, offset=0):
    return [
        TransactionRequest.from_transaction(txn)
        for txn in dataset.test_transactions[offset : offset + count]
    ]


class TestAsyncServingFrontEnd:
    def test_concurrent_submits_coalesce_into_full_batches(self, async_fleet, dataset):
        """A burst of concurrent awaiters is served as max_batch micro-batches."""
        server = _fresh_server(async_fleet)
        requests = _requests(dataset, 24)

        async def _run():
            front_end = AsyncServingFrontEnd(
                server, coalescer=CoalescerConfig(max_batch=8, max_delay_ms=1000.0)
            )
            results = await asyncio.gather(
                *[front_end.submit(request) for request in requests]
            )
            await front_end.drain()
            return results, front_end.stats()

        results, stats = asyncio.run(_run())
        assert len(results) == len(requests)
        # results arrive in submission order, paired with their own request
        assert [served.request.transaction_id for served in results] == [
            request.transaction_id for request in requests
        ]
        assert stats["requests"] == len(requests)
        assert stats["full_flushes"] == 3.0
        assert stats["deadline_flushes"] == 0.0
        # the burst never waited for the (long) deadline
        assert stats["max_wait_ms"] < 1000.0

    def test_deadline_timer_flushes_partial_batch(self, async_fleet, dataset):
        """A lone request is flushed by the wall-clock deadline timer, not a
        full buffer, and its recorded wait equals the max_delay budget."""
        server = _fresh_server(async_fleet)
        (request,) = _requests(dataset, 1)

        async def _run():
            front_end = AsyncServingFrontEnd(
                server, coalescer=CoalescerConfig(max_batch=64, max_delay_ms=20.0)
            )
            start = asyncio.get_running_loop().time()
            served = await front_end.submit(request)
            elapsed_ms = (asyncio.get_running_loop().time() - start) * 1000.0
            return served, elapsed_ms, front_end.stats()

        served, elapsed_ms, stats = asyncio.run(_run())
        assert served.request.transaction_id == request.transaction_id
        # the await outlived the deadline (the timer, nothing else, flushed it)
        assert elapsed_ms >= 20.0 * 0.5  # generous lower bound for coarse timers
        assert stats["deadline_flushes"] == 1.0
        assert stats["full_flushes"] == 0.0
        assert stats["max_wait_ms"] == pytest.approx(20.0)

    def test_waits_never_exceed_the_deadline_budget(self, async_fleet, dataset):
        """Trickled arrivals flush on the oldest request's deadline, so no
        recorded wait ever exceeds max_delay_ms."""
        server = _fresh_server(async_fleet)
        requests = _requests(dataset, 10)

        async def _run():
            front_end = AsyncServingFrontEnd(
                server, coalescer=CoalescerConfig(max_batch=64, max_delay_ms=15.0)
            )
            futures = []
            for request in requests:
                futures.append(front_end.submit_nowait(request))
                await asyncio.sleep(0.004)
            await front_end.drain()
            await asyncio.gather(*futures)
            return front_end.stats()

        stats = asyncio.run(_run())
        assert stats["requests"] == len(requests)
        assert stats["deadline_flushes"] >= 1.0
        assert stats["max_wait_ms"] <= 15.0 + 1e-9

    def test_front_end_rejects_a_second_event_loop(self, async_fleet, dataset):
        server = _fresh_server(async_fleet)
        (request,) = _requests(dataset, 1)
        front_end = AsyncServingFrontEnd(
            server, coalescer=CoalescerConfig(max_batch=1, max_delay_ms=5.0)
        )

        async def _first():
            await front_end.submit(request)

        async def _second():
            front_end.submit_nowait(request)

        asyncio.run(_first())
        with pytest.raises(ServingError, match="another event loop"):
            asyncio.run(_second())


class TestWallClockReplay:
    def test_wall_replay_serves_every_transaction(self, async_fleet, dataset):
        """The acceptance bar: a concurrent wall-clock replay answers every
        submitted request — zero failed, zero dropped."""
        server = _fresh_server(async_fleet)
        transactions = dataset.test_transactions[:150]
        report = server.replay_transactions(
            transactions,
            arrival_rate_per_s=3000.0,
            coalescer=CoalescerConfig(max_batch=16, max_delay_ms=4.0),
            clock="wall",
        )
        assert report.total == len(transactions)
        assert report.approved + report.interrupted == report.total
        stats = server.last_coalescer_stats
        assert stats is not None
        assert stats["requests"] == len(transactions)
        assert stats["max_wait_ms"] <= 4.0 + 1e-9
        assert stats["batches"] >= 2.0

    def test_wall_and_simulated_replay_agree_on_outcomes(self, async_fleet, dataset):
        """Same stream, same fleet policy: the two clocks must agree on every
        decision (outcomes depend on features/models, not on arrival pacing)."""
        transactions = dataset.test_transactions[:80]
        simulated = _fresh_server(async_fleet).replay_transactions(
            transactions,
            arrival_rate_per_s=2000.0,
            coalescer=CoalescerConfig(max_batch=8, max_delay_ms=5.0),
        )
        wall = _fresh_server(async_fleet).replay_transactions(
            transactions,
            arrival_rate_per_s=2000.0,
            coalescer=CoalescerConfig(max_batch=8, max_delay_ms=5.0),
            clock="wall",
        )
        assert wall.total == simulated.total
        assert wall.interrupted == simulated.interrupted
        assert wall.true_alerts == simulated.true_alerts
        assert wall.false_alerts == simulated.false_alerts

    def test_wall_clock_requires_arrival_rate(self, async_fleet, dataset):
        server = _fresh_server(async_fleet)
        with pytest.raises(ServingError, match="arrival_rate_per_s"):
            server.replay_transactions(dataset.test_transactions[:5], clock="wall")

    def test_unknown_clock_rejected(self, async_fleet, dataset):
        server = _fresh_server(async_fleet)
        with pytest.raises(ServingError, match="clock"):
            server.replay_transactions(
                dataset.test_transactions[:5],
                arrival_rate_per_s=100.0,
                clock="logical",
            )

    def test_admission_under_wall_clock_degrades_instead_of_dropping(
        self, async_fleet, dataset
    ):
        """Overload on the event loop sheds to the fallback — still answered."""
        admission = AdmissionController(
            AdmissionConfig(capacity_rps=200.0, max_queue_depth=4)
        )
        server = _fresh_server(async_fleet, admission=admission)
        transactions = dataset.test_transactions[:120]
        report = server.replay_transactions(
            transactions,
            arrival_rate_per_s=4000.0,
            coalescer=CoalescerConfig(max_batch=16, max_delay_ms=3.0),
            clock="wall",
        )
        assert report.total == len(transactions)
        assert report.degraded > 0
        assert report.peak_queue_depth > 0.0
