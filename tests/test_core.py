"""Tests of the core layer: metrics, configuration, pipeline, experiment, registry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExperimentConfig,
    ExperimentRunner,
    ModelHyperparameters,
    ModelRegistry,
    ModelVersion,
    TABLE1_CONFIGURATIONS,
    f1_score,
    recall_at_top_percent,
    select_threshold,
)
from repro.core.config import DetectorName, FeatureSetName, Table1Configuration
from repro.core.evaluation import confusion_counts, evaluate_scores, precision_recall
from repro.core.pipeline import OfflineTrainingPipeline, build_detector
from repro.exceptions import ConfigurationError, ModelError, ServingError
from repro.hbase import HBaseClient
from repro.models.gbdt import GradientBoostingClassifier
from repro.serving import AlipayServer, ModelServer, ModelServerConfig
from repro.serving.model_server import TransactionRequest

import tests.conftest as conftest_module


class TestEvaluationMetrics:
    def test_confusion_and_f1(self):
        labels = np.array([1, 1, 0, 0, 1, 0])
        predictions = np.array([1, 0, 0, 1, 1, 0])
        tp, fp, fn, tn = confusion_counts(labels, predictions)
        assert (tp, fp, fn, tn) == (2, 1, 1, 2)
        precision, recall = precision_recall(labels, predictions)
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)
        assert f1_score(labels, predictions.astype(float)) == pytest.approx(2 / 3)

    def test_perfect_and_zero_f1(self):
        labels = np.array([1, 0, 1, 0])
        assert f1_score(labels, labels.astype(float)) == pytest.approx(1.0)
        assert f1_score(labels, 1.0 - labels) == pytest.approx(0.0)

    def test_recall_at_top_percent(self):
        labels = np.zeros(200)
        labels[:4] = 1.0
        scores = np.linspace(1.0, 0.0, 200)  # the 4 frauds carry the top scores
        assert recall_at_top_percent(labels, scores, percent=1.0) == pytest.approx(0.5)
        assert recall_at_top_percent(labels, scores, percent=2.0) == pytest.approx(1.0)

    def test_recall_at_top_with_no_frauds(self):
        assert recall_at_top_percent(np.zeros(50), np.random.default_rng(0).random(50)) == 0.0

    def test_select_threshold_maximises_f1(self):
        rng = np.random.default_rng(0)
        labels = (rng.random(500) < 0.1).astype(float)
        scores = np.where(labels == 1, rng.normal(0.8, 0.1, 500), rng.normal(0.3, 0.1, 500))
        threshold = select_threshold(labels, scores)
        best = max(f1_score(labels, scores, threshold=t) for t in np.linspace(0.01, 0.99, 50))
        assert f1_score(labels, scores, threshold=threshold) >= best - 0.02

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ModelError):
            f1_score(np.array([1, 0]), np.array([0.5]))

    def test_evaluate_scores_bundle(self):
        labels = np.array([1, 0, 1, 0, 0, 0, 0, 0, 0, 1])
        scores = np.array([0.9, 0.1, 0.8, 0.2, 0.1, 0.3, 0.2, 0.1, 0.4, 0.7])
        metrics = evaluate_scores(labels, scores)
        assert metrics.f1 == pytest.approx(1.0)
        assert metrics.num_frauds == 3
        assert metrics.as_dict()["recall"] == pytest.approx(1.0)


class TestConfiguration:
    def test_table1_has_eleven_rows(self):
        assert len(TABLE1_CONFIGURATIONS) == 11
        assert [c.number for c in TABLE1_CONFIGURATIONS] == list(range(1, 12))
        assert TABLE1_CONFIGURATIONS[8].label == "Basic Features+DW+GBDT"

    def test_feature_set_flags(self):
        assert FeatureSetName.BASIC_DW.uses_deepwalk
        assert not FeatureSetName.BASIC_DW.uses_structure2vec
        assert FeatureSetName.BASIC_DW_S2V.uses_structure2vec

    def test_hyperparameters_validation(self):
        ModelHyperparameters.paper_scale().validate()
        with pytest.raises(ConfigurationError):
            ModelHyperparameters(embedding_dimension=0).validate()
        with pytest.raises(ConfigurationError):
            ModelHyperparameters(gbdt_subsample=0.0).validate()

    def test_experiment_config_validation(self):
        config = ExperimentConfig.laptop_scale()
        config.validate()
        with pytest.raises(ConfigurationError):
            ExperimentConfig(num_datasets=0).validate()
        with pytest.raises(ConfigurationError):
            ExperimentConfig(embedding_side="middle").validate()

    def test_build_detector_covers_all_names(self):
        hp = ModelHyperparameters.fast_test_scale()
        for name in DetectorName:
            detector = build_detector(name, hp)
            assert hasattr(detector, "fit")


class TestRegistry:
    def _version(self, feature_matrices, name="v1"):
        train, _ = feature_matrices
        model = GradientBoostingClassifier(num_trees=5, seed=0).fit(train.values, train.labels)
        return ModelVersion(
            version=name, model=model, threshold=0.5, feature_names=train.feature_names
        )

    def test_register_and_latest(self, feature_matrices):
        registry = ModelRegistry()
        registry.register(self._version(feature_matrices, "v1"))
        registry.register(self._version(feature_matrices, "v2"))
        assert registry.latest().version == "v2"
        assert registry.versions() == ["v1", "v2"]
        assert registry.rollback().version == "v1"

    def test_duplicate_rejected_and_unfitted_rejected(self, feature_matrices):
        registry = ModelRegistry()
        registry.register(self._version(feature_matrices, "v1"))
        with pytest.raises(ServingError):
            registry.register(self._version(feature_matrices, "v1"))
        bad = ModelVersion(
            version="bad", model=GradientBoostingClassifier(), threshold=0.5, feature_names=[]
        )
        with pytest.raises(ModelError):
            registry.register(bad)

    def test_history_records_metadata(self, feature_matrices):
        registry = ModelRegistry()
        version = self._version(feature_matrices, "v1")
        version.metrics["f1"] = 0.61
        registry.register(version)
        assert registry.history()[0]["metrics"]["f1"] == 0.61


@pytest.fixture(scope="module")
def experiment_runner(world):
    config = ExperimentConfig(
        num_datasets=1,
        network_days=conftest_module.TEST_NETWORK_DAYS,
        train_days=conftest_module.TEST_TRAIN_DAYS,
        hyperparameters=ModelHyperparameters.fast_test_scale(),
    )
    return ExperimentRunner(world, config)


class TestPipelineAndExperiment:
    def test_prepare_trains_requested_embeddings(self, experiment_runner):
        dataset = experiment_runner.datasets()[0]
        preparation = experiment_runner.pipeline.prepare(
            dataset, need_deepwalk=True, need_structure2vec=False
        )
        assert "dw" in preparation.embeddings and "s2v" not in preparation.embeddings
        assert preparation.network.num_nodes > 0

    def test_train_and_evaluate_one_configuration(self, experiment_runner):
        dataset = experiment_runner.datasets()[0]
        preparation = experiment_runner.preparation_for(dataset)
        configuration = Table1Configuration(9, DetectorName.GBDT, FeatureSetName.BASIC_DW)
        bundle = experiment_runner.pipeline.train(preparation, configuration)
        assert bundle.detector.is_fitted
        assert 0.0 <= bundle.threshold <= 1.0
        test_matrix = experiment_runner.pipeline.evaluate(preparation, bundle)
        assert test_matrix.num_features == len(bundle.feature_names)

    def test_run_table1_subset(self, experiment_runner):
        subset = [
            Table1Configuration(1, DetectorName.ISOLATION_FOREST, FeatureSetName.BASIC),
            Table1Configuration(5, DetectorName.GBDT, FeatureSetName.BASIC),
            Table1Configuration(9, DetectorName.GBDT, FeatureSetName.BASIC_DW),
        ]
        results = experiment_runner.run_table1(configurations=subset)
        assert len(results) == 3
        assert all(len(r.daily) == 1 for r in results)
        assert all(0.0 <= r.mean_f1 <= 1.0 for r in results)
        rendered = ExperimentRunner.format_table1(results)
        assert "Basic Features+GBDT" in rendered

    def test_recall_at_top_runs_for_all_detectors(self, experiment_runner):
        results = experiment_runner.run_recall_at_top()
        assert set(results) == {"if", "id3", "c50", "lr", "gbdt"}
        assert all(0.0 <= value <= 1.0 for value in results.values())

    def test_node_sampling_sweep(self, experiment_runner):
        results = experiment_runner.run_node_sampling_sweep(sampling_counts=(2, 4))
        assert set(results) == {2, 4}

    def test_maxcompute_backed_network_matches_direct(self, world, dataset):
        direct = OfflineTrainingPipeline(
            world.profiles_by_id, ModelHyperparameters.fast_test_scale()
        )._build_network(dataset)
        via_maxcompute = OfflineTrainingPipeline(
            world.profiles_by_id,
            ModelHyperparameters.fast_test_scale(),
            use_maxcompute=True,
        )._build_network(dataset)
        assert direct.num_nodes == via_maxcompute.num_nodes
        assert direct.num_edges == via_maxcompute.num_edges

    def test_end_to_end_offline_to_online(self, world, experiment_runner):
        """Offline training → HBase publication → Model Server → Alipay replay."""
        dataset = experiment_runner.datasets()[0]
        preparation = experiment_runner.preparation_for(dataset)
        configuration = Table1Configuration(9, DetectorName.GBDT, FeatureSetName.BASIC_DW)
        bundle = experiment_runner.pipeline.train(preparation, configuration)

        hbase = HBaseClient()
        server = ModelServer(hbase, ModelServerConfig())
        experiment_runner.pipeline.deploy(bundle, preparation, hbase, server)
        assert server.has_model

        # Online scoring equals offline scoring on the same transaction.
        txn = dataset.test_transactions[0]
        offline_matrix = experiment_runner.pipeline.evaluate(preparation, bundle)
        offline_score = bundle.detector.predict_proba(offline_matrix.values[:1])[0]
        online = server.predict(TransactionRequest.from_transaction(txn))
        assert online.fraud_probability == pytest.approx(offline_score, abs=1e-9)

        alipay = AlipayServer(server)
        report = alipay.replay_transactions(dataset.test_transactions[:50])
        assert report.total == 50

    def test_deploy_fleet_registry_supersedes_retrained_bundle(self, experiment_runner):
        """Regression: redeploying a retrained bundle whose version string
        already exists in the registry must serve the *new* detector, not the
        stale registration."""
        dataset = experiment_runner.datasets()[0]
        preparation = experiment_runner.preparation_for(dataset)
        configuration = Table1Configuration(5, DetectorName.GBDT, FeatureSetName.BASIC)
        pipeline = experiment_runner.pipeline

        registry = ModelRegistry()
        hbase = HBaseClient()
        server = ModelServer(hbase, ModelServerConfig())
        first = pipeline.train(preparation, configuration)
        pipeline.deploy_fleet(first, preparation, hbase, [server], registry=registry)
        assert server.active_model.model is first.detector

        retrained = pipeline.train(preparation, configuration)
        assert retrained.version == first.version
        assert retrained.detector is not first.detector
        pipeline.deploy_fleet(retrained, preparation, hbase, [server], registry=registry)
        assert registry.get(retrained.version).model is retrained.detector
        assert server.active_model.model is retrained.detector


@settings(max_examples=25, deadline=None)
@given(
    scores=st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=5, max_size=60),
    data=st.data(),
)
def test_f1_threshold_monotone_count_property(scores, data):
    """Raising the threshold never increases the number of positive predictions."""
    scores_array = np.array(scores)
    labels = np.array(data.draw(st.lists(st.integers(0, 1), min_size=len(scores), max_size=len(scores))), dtype=float)
    low, high = 0.2, 0.8
    low_positives = (scores_array >= low).sum()
    high_positives = (scores_array >= high).sum()
    assert high_positives <= low_positives
    # F1 stays within [0, 1] for any threshold.
    for threshold in (low, high):
        assert 0.0 <= f1_score(labels, scores_array, threshold=threshold) <= 1.0
