"""Tests of the synthetic transaction-world generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import generate_world
from repro.datagen.datasets import DatasetBuilder, RollingDatasets, small_world_config
from repro.datagen.fraud import FraudConfig, FraudsterBehaviorModel
from repro.datagen.profiles import ProfileConfig, ProfileGenerator, profiles_by_id
from repro.datagen.schema import (
    Transaction,
    TransactionChannel,
    city_tier,
    validate_transaction,
)
from repro.datagen.transactions import WorldConfig
from repro.exceptions import DataGenerationError


class TestProfiles:
    def test_population_size_and_fraud_fraction(self):
        config = ProfileConfig(num_users=400, fraudster_fraction=0.05, seed=3)
        profiles = ProfileGenerator(config).generate()
        assert len(profiles) == 400
        fraudsters = sum(p.is_fraudster for p in profiles)
        assert fraudsters == round(400 * 0.05)

    def test_profiles_are_reproducible(self):
        config = ProfileConfig(num_users=100, seed=5)
        first = ProfileGenerator(config).generate()
        second = ProfileGenerator(ProfileConfig(num_users=100, seed=5)).generate()
        assert [p.user_id for p in first] == [p.user_id for p in second]
        assert [p.age for p in first] == [p.age for p in second]

    def test_unique_user_ids(self):
        profiles = ProfileGenerator(ProfileConfig(num_users=250, seed=1)).generate()
        index = profiles_by_id(profiles)
        assert len(index) == 250

    def test_fraudsters_concentrate_in_ring_communities(self):
        config = ProfileConfig(num_users=3000, fraudster_fraction=0.05, num_communities=12, seed=9)
        profiles = ProfileGenerator(config).generate()
        ring = [p for p in profiles if p.community % 4 == 0]
        other = [p for p in profiles if p.community % 4 != 0]
        ring_rate = sum(p.is_fraudster for p in ring) / len(ring)
        other_rate = sum(p.is_fraudster for p in other) / len(other)
        assert ring_rate > other_rate * 2

    def test_invalid_config_rejected(self):
        with pytest.raises(DataGenerationError):
            ProfileConfig(num_users=0).validate()
        with pytest.raises(DataGenerationError):
            ProfileConfig(fraudster_fraction=1.5).validate()

    def test_ages_within_bounds(self):
        config = ProfileConfig(num_users=300, min_age=21, max_age=60, seed=2)
        profiles = ProfileGenerator(config).generate()
        assert all(21 <= p.age <= 60 for p in profiles)


class TestFraudModel:
    def _model(self, seed=0, **overrides):
        profiles = ProfileGenerator(ProfileConfig(num_users=300, fraudster_fraction=0.05, seed=seed)).generate()
        return FraudsterBehaviorModel(profiles, FraudConfig(**overrides), rng=seed)

    def test_planned_frauds_target_normal_users(self):
        model = self._model(seed=3)
        planned = []
        for day in range(30):
            planned.extend(model.plan_day(day))
        assert planned, "expected at least one planned fraud over 30 days"
        states = model.states
        for fraud in planned:
            assert fraud.fraudster_id in states
            assert fraud.victim_id not in states  # victims are normal users

    def test_repeat_offender_fraction_roughly_respected(self):
        model = self._model(seed=5, repeat_offender_fraction=0.7)
        for day in range(60):
            model.plan_day(day)
        # Among fraudsters that acted, a clear majority should have repeated.
        assert model.repeat_fraction() > 0.4

    def test_report_delay_positive(self):
        model = self._model(seed=7)
        planned = []
        for day in range(20):
            planned.extend(model.plan_day(day))
        assert all(f.report_delay_days >= 1 for f in planned)

    def test_invalid_fraud_config(self):
        with pytest.raises(DataGenerationError):
            FraudConfig(repeat_offender_fraction=1.4).validate()
        with pytest.raises(DataGenerationError):
            FraudConfig(frauds_per_active_day=0).validate()


class TestWorldGeneration:
    def test_world_summary_consistency(self, world):
        summary = world.summary()
        assert summary.num_transactions == len(world.transactions)
        assert summary.num_users == len(world.profiles)
        assert 0.0 < summary.fraud_rate < 0.2

    def test_every_transaction_is_schema_valid(self, world):
        for txn in world.transactions[:2000]:
            assert validate_transaction(txn) is None

    def test_labels_unbalanced(self, world):
        frauds = sum(t.is_fraud for t in world.transactions)
        assert frauds / len(world.transactions) < 0.1

    def test_world_is_deterministic_for_a_seed(self):
        config = small_world_config(num_users=120, num_days=8, seed=42)
        first = generate_world(config)
        second = generate_world(small_world_config(num_users=120, num_days=8, seed=42))
        assert len(first.transactions) == len(second.transactions)
        assert first.transactions[0].to_row() == second.transactions[0].to_row()

    def test_fraud_transfers_point_to_fraudsters(self, world):
        fraudsters = {p.user_id for p in world.profiles if p.is_fraudster}
        campaign_frauds = [
            t for t in world.transactions if t.is_fraud and t.payee_id in fraudsters
        ]
        all_frauds = [t for t in world.transactions if t.is_fraud]
        # Background fraud exists but campaign fraud dominates.
        assert len(campaign_frauds) > 0.8 * len(all_frauds)

    def test_transactions_in_days_bounds(self, world):
        window = world.transactions_in_days(5, 10)
        assert all(5 <= t.day < 10 for t in window)
        with pytest.raises(DataGenerationError):
            world.transactions_in_days(10, 5)

    def test_label_delay_hides_recent_frauds(self, world):
        window = world.transactions_in_days(0, 20)
        frauds_truth = sum(t.is_fraud for t in window)
        visible = world.labeled_transactions_in_days(0, 20, as_of_day=20)
        frauds_visible = sum(t.is_fraud for t in visible)
        assert frauds_visible <= frauds_truth

    def test_city_tier_mapping_is_total(self):
        assert city_tier("city_000") in ("tier_low", "tier_mid", "tier_high")
        assert city_tier("not_a_city") == "tier_mid"


class TestDatasetSlicing:
    def test_slice_boundaries(self, world):
        builder = DatasetBuilder(world, network_days=18, train_days=6)
        dataset = builder.build(builder.earliest_test_day())
        spec = dataset.spec
        assert spec.network_end == spec.train_start
        assert spec.train_end == spec.test_day
        assert all(spec.network_start <= t.day < spec.network_end for t in dataset.network_transactions)
        assert all(spec.train_start <= t.day < spec.train_end for t in dataset.train_transactions)
        assert all(t.day == spec.test_day for t in dataset.test_transactions)

    def test_insufficient_history_rejected(self, world):
        builder = DatasetBuilder(world, network_days=18, train_days=6)
        with pytest.raises(DataGenerationError):
            builder.build(5)

    def test_rolling_datasets_shift_by_one_day(self, world):
        rolling = RollingDatasets.build(world, num_datasets=3, network_days=18, train_days=6)
        days = [s.spec.test_day for s in rolling]
        assert days == [days[0], days[0] + 1, days[0] + 2]

    def test_rolling_datasets_reject_too_long_horizon(self, world):
        with pytest.raises(DataGenerationError):
            RollingDatasets.build(world, num_datasets=50, network_days=18, train_days=6)

    def test_train_labels_respect_delay(self, world):
        builder_delayed = DatasetBuilder(world, network_days=18, train_days=6)
        builder_oracle = DatasetBuilder(
            world, network_days=18, train_days=6, respect_label_delay=False
        )
        day = builder_delayed.earliest_test_day()
        delayed = builder_delayed.build(day)
        oracle = builder_oracle.build(day)
        assert sum(t.is_fraud for t in delayed.train_transactions) <= sum(
            t.is_fraud for t in oracle.train_transactions
        )


@settings(max_examples=20, deadline=None)
@given(
    amount=st.floats(min_value=0.5, max_value=50_000, allow_nan=False),
    hour=st.integers(min_value=0, max_value=23),
    day=st.integers(min_value=0, max_value=200),
    delay=st.integers(min_value=0, max_value=30),
)
def test_transaction_validation_property(amount, hour, day, delay):
    """Any well-formed transaction passes validation; bad ones are caught."""
    txn = Transaction(
        transaction_id="t1",
        day=day,
        hour=hour,
        payer_id="u1",
        payee_id="u2",
        amount=amount,
        channel=TransactionChannel.APP,
        trans_city="city_001",
        device_id="d1",
        is_new_device=False,
        ip_risk_score=0.1,
        payer_recent_txn_count=0,
        payer_recent_amount=0.0,
        payee_recent_inbound_count=0,
        is_fraud=True,
        label_available_day=day + delay,
    )
    assert validate_transaction(txn) is None
    bad = Transaction(**{**txn.to_row(), "channel": txn.channel, "payee_id": "u1"})
    assert validate_transaction(bad) is not None
