"""Determinism-tagged checksum tests (the dynamic invariant sanitizer).

Every test here is marked ``@pytest.mark.determinism`` and records a
checksum of a deterministic artifact via the ``record_checksum`` fixture.
``scripts/run_determinism_check.py`` runs this tagged subset twice under
*different* ``PYTHONHASHSEED`` values and fails when any recorded checksum
differs — catching hash-order-dependent iteration that the static
``iteration-order`` lint rule cannot see (a variable that happens to hold a
set, dict keys built from hashing, ...).

The tests also assert within-process repeatability, so they pull their
weight in a plain tier-1 run too.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.datagen import generate_world
from repro.datagen.profiles import ProfileConfig
from repro.datagen.stream import WorldStream
from repro.datagen.transactions import WorldConfig
from repro.graph.random_walk import RandomWalkConfig, RandomWalker
from repro.models.gbdt import GradientBoostingClassifier
from repro.rng import ensure_rng

pytestmark = pytest.mark.determinism


def _small_config(seed: int = 17) -> WorldConfig:
    return WorldConfig(
        profile=ProfileConfig(
            num_users=80,
            num_communities=4,
            fraudster_fraction=0.04,
            seed=seed,
        ),
        num_days=6,
        transactions_per_user_per_day=0.6,
        seed=seed,
    )


def _transaction_digest(transactions) -> str:
    hasher = hashlib.sha256()
    for txn in transactions:
        hasher.update(
            (
                f"{txn.transaction_id}|{txn.day}|{txn.hour}|{txn.payer_id}|"
                f"{txn.payee_id}|{txn.amount!r}|{txn.channel.value}|"
                f"{txn.device_id}|{int(txn.is_fraud)}"
            ).encode()
        )
    return hasher.hexdigest()


def test_world_generation_checksum(record_checksum):
    """Materialized generation is bit-stable at a fixed seed."""
    first = generate_world(_small_config())
    second = generate_world(_small_config())
    digest = _transaction_digest(first.transactions)
    assert digest == _transaction_digest(second.transactions)
    record_checksum("world-transactions", digest)
    record_checksum(
        "world-profiles",
        hashlib.sha256(
            "|".join(p.user_id for p in first.profiles).encode()
        ).hexdigest(),
    )


def test_streamed_world_matches_materialized(record_checksum):
    """The streaming generator agrees bit-for-bit with materialization."""
    streamed = list(WorldStream(_small_config()).events())
    materialized = generate_world(_small_config()).transactions
    digest = _transaction_digest(streamed)
    assert digest == _transaction_digest(materialized)
    record_checksum("stream-vs-materialized", digest)


def test_feature_matrix_checksum(feature_matrices, record_checksum):
    """The session slice's basic-feature matrices are byte-stable."""
    train, test = feature_matrices
    record_checksum(
        "train-features",
        hashlib.sha256(np.ascontiguousarray(train.values).tobytes()).hexdigest(),
    )
    record_checksum(
        "test-features",
        hashlib.sha256(np.ascontiguousarray(test.values).tobytes()).hexdigest(),
    )
    record_checksum(
        "feature-names", hashlib.sha256("|".join(train.feature_names).encode()).hexdigest()
    )


def test_walk_corpus_checksum(network, record_checksum):
    """Seeded random-walk corpora are reproducible walk-for-walk."""
    config = RandomWalkConfig(num_walks_per_node=2, walk_length=8)
    walks_a = RandomWalker(network, config, rng=ensure_rng(23)).generate()
    walks_b = RandomWalker(network, config, rng=ensure_rng(23)).generate()
    assert walks_a == walks_b
    digest = hashlib.sha256(
        "\n".join(" ".join(walk) for walk in walks_a).encode()
    ).hexdigest()
    record_checksum("walk-corpus", digest)


def test_gbdt_predictions_checksum(small_classification_data, record_checksum):
    """Same-seed GBDT training lands on identical predictions."""
    features, labels = small_classification_data
    model = GradientBoostingClassifier(
        num_trees=8, max_depth=3, learning_rate=0.3, seed=5
    ).fit(features, labels)
    scores = model.predict_proba(features)
    record_checksum(
        "gbdt-scores", hashlib.sha256(np.ascontiguousarray(scores).tobytes()).hexdigest()
    )
