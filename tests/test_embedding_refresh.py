"""Dynamic-graph embedding refresh in the serving path (PR 10 tentpole).

Covers the refresh queue, the exact restricted forward pass
(:meth:`Structure2Vec.embed_nodes`), and the :class:`EmbeddingRefresher`'s
two strategies:

* ``"retrain"`` — refreshed rows must be *bit-identical* to a from-scratch
  :meth:`Structure2Vec.fit` on the cumulative graph at the same seed (the
  convergence contract, property-tested over random stream prefixes), and
* ``"propagate"`` — refreshed rows must match an independent dense
  full-network forward pass reimplemented here from the model's parameters.

In both modes, accounts outside the touched neighbourhood are never written:
their stored HBase rows stay bit-unchanged.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.schema import Transaction, TransactionChannel
from repro.exceptions import EmbeddingError, ServingError
from repro.features.streaming import SlidingWindowAggregator
from repro.graph.builder import build_network
from repro.hbase.client import AGGREGATES_FAMILY, EMBEDDINGS_FAMILY, HBaseClient
from repro.nrl.structure2vec import (
    Structure2Vec,
    Structure2VecConfig,
    node_labels_from_transactions,
    node_structural_features,
)
from repro.serving.embedding_refresh import (
    EmbeddingRefreshConfig,
    EmbeddingRefreshQueue,
    EmbeddingRefresher,
)
from repro.serving.streaming import StreamingFeatureUpdater

S2V_CONFIG = Structure2VecConfig(dimension=6, epochs=8, seed=5)
TABLE = "titant_features"


def make_txn(index: int, payer: str, payee: str, *, day: int = 0, amount: float = 50.0,
             is_fraud: bool = False) -> Transaction:
    """A minimal schema-valid transaction between two distinct accounts."""
    return Transaction(
        transaction_id=f"t{index:05d}",
        day=day,
        hour=index % 24,
        payer_id=payer,
        payee_id=payee,
        amount=amount,
        channel=TransactionChannel.APP,
        trans_city="city_001",
        device_id=f"d{index}",
        is_new_device=False,
        ip_risk_score=0.1,
        payer_recent_txn_count=0,
        payer_recent_amount=0.0,
        payee_recent_inbound_count=0,
        is_fraud=is_fraud,
        label_available_day=day,
    )


def random_transactions(seed: int, *, num_accounts: int = 18, count: int = 70):
    """A seeded random edge stream over a small account population."""
    rng = np.random.default_rng(seed)
    transactions = []
    for index in range(count):
        payer, payee = rng.choice(num_accounts, size=2, replace=False)
        transactions.append(
            make_txn(
                index,
                f"u{payer:02d}",
                f"u{payee:02d}",
                day=index // 10,
                amount=float(rng.integers(10, 500)),
                is_fraud=bool(rng.random() < 0.08),
            )
        )
    return transactions


def fitted_model(warmup):
    network = build_network(warmup)
    labels = node_labels_from_transactions(warmup)
    return Structure2Vec(S2V_CONFIG).fit(network, node_labels=labels)


def store_with_embeddings(model, *, version: int = 100) -> HBaseClient:
    hbase = HBaseClient()
    hbase.create_feature_store(TABLE)
    embeddings = model.embeddings()
    rows = {
        node: {"s2v": tuple(float(v) for v in embeddings[node])}
        for node in embeddings.node_ids()
    }
    hbase.bulk_load(TABLE, EMBEDDINGS_FAMILY, rows, version=version)
    return hbase


def snapshot_rows(hbase: HBaseClient):
    """Every stored embedding row, for bit-unchanged comparisons."""
    table = hbase.table(TABLE)
    return {
        row_key: dict(cells)
        for row_key, cells in table.scan(EMBEDDINGS_FAMILY)
    }


class TestEmbeddingRefreshQueue:
    def test_fifo_order_and_dedup(self):
        queue = EmbeddingRefreshQueue()
        assert queue.enqueue("a") is True
        assert queue.enqueue("b") is True
        assert queue.enqueue("a") is False  # coalesced
        assert queue.extend(["c", "b"]) == 1
        assert len(queue) == 3
        assert "b" in queue
        assert queue.drain() == ["a", "b", "c"]
        assert len(queue) == 0
        assert queue.enqueued == 5
        assert queue.coalesced == 2

    def test_drain_with_limit_preserves_rest(self):
        queue = EmbeddingRefreshQueue()
        queue.extend(["a", "b", "c", "d"])
        assert queue.drain(2) == ["a", "b"]
        assert queue.drain(0) == []
        assert queue.drain(99) == ["c", "d"]

    def test_config_validation(self):
        with pytest.raises(ServingError):
            EmbeddingRefreshConfig(mode="nightly").validate()
        with pytest.raises(ServingError):
            EmbeddingRefreshConfig(set_name="").validate()
        with pytest.raises(ServingError):
            EmbeddingRefreshConfig(max_refresh_batch=-1).validate()
        with pytest.raises(ServingError):
            EmbeddingRefreshConfig(auto_refresh_threshold=0).validate()
        EmbeddingRefreshConfig().validate()


class TestRestrictedForward:
    def test_embed_nodes_matches_full_forward(self):
        transactions = random_transactions(3)
        model = fitted_model(transactions)
        network = build_network(transactions)
        full = model.embeddings()
        restricted = model.embed_nodes(network, sorted(network.nodes()))
        for node in network.nodes():
            assert np.allclose(restricted[node], full[node], atol=1e-9)

    def test_embed_nodes_requires_fit_and_known_targets(self):
        transactions = random_transactions(4)
        network = build_network(transactions)
        with pytest.raises(EmbeddingError):
            Structure2Vec(S2V_CONFIG).embed_nodes(network, ["u00"])
        model = fitted_model(transactions)
        with pytest.raises(EmbeddingError):
            model.embed_nodes(network, ["ghost"])
        with pytest.raises(EmbeddingError):
            model.embed_nodes(network, [])

    def test_params_property_returns_copies(self):
        model = fitted_model(random_transactions(5))
        params = model.params
        params["W1"][:] = 0.0
        assert not np.allclose(model.params["W1"], 0.0)
        with pytest.raises(EmbeddingError):
            Structure2Vec(S2V_CONFIG).params

    def test_subset_features_match_full_rows(self):
        network = build_network(random_transactions(6))
        nodes, full = node_structural_features(network)
        subset = [nodes[4], nodes[0], nodes[9]]
        subset_nodes, rows = node_structural_features(network, nodes=subset)
        assert subset_nodes == subset
        for row, node in enumerate(subset):
            assert np.array_equal(rows[row], full[nodes.index(node)])


def dense_full_forward(params, network, rounds):
    """Independent oracle: dense full-network mean-field forward pass.

    Reimplements the propagation from the module docstring's equation alone
    (no shared code with ``Structure2Vec._forward``), so a bug in the
    restricted-forward bookkeeping cannot cancel out.
    """
    nodes = network.nodes()
    index = {node: i for i, node in enumerate(nodes)}
    features = np.zeros((len(nodes), 6))
    for i, node in enumerate(nodes):
        incoming = network.predecessors(node)
        outgoing = network.successors(node)
        total_degree = len(incoming) + len(outgoing)
        features[i] = [
            np.log1p(len(incoming)),
            np.log1p(len(outgoing)),
            np.log1p(sum(incoming.values())),
            np.log1p(sum(outgoing.values())),
            len(incoming) / total_degree if total_degree else 0.0,
            1.0,
        ]
    adjacency = np.zeros((len(nodes), len(nodes)))
    for i, node in enumerate(nodes):
        neighbors = network.neighbors(node)
        total = sum(neighbors.values())
        for neighbor, weight in neighbors.items():
            adjacency[i, index[neighbor]] = weight / total
    mu = np.zeros((len(nodes), params["W1"].shape[0]))
    base = features @ params["W1"].T
    for _ in range(rounds):
        mu = np.maximum(base + (adjacency @ mu) @ params["W2"].T, 0.0)
    return {node: mu[index[node]] for node in nodes}


class TestEmbeddingRefresher:
    def split_stream(self, seed: int):
        transactions = random_transactions(seed)
        cut = int(len(transactions) * 0.7)
        return transactions[:cut], transactions[cut:]

    def test_propagate_matches_independent_dense_oracle(self):
        warmup, delta = self.split_stream(7)
        model = fitted_model(warmup)
        hbase = store_with_embeddings(model)
        refresher = EmbeddingRefresher(
            model, hbase,
            config=EmbeddingRefreshConfig(mode="propagate"),
            warmup_transactions=warmup, start_version=100,
        )
        for transaction in delta:
            refresher.observe_transaction(transaction)
        report = refresher.refresh()
        assert report.mode == "propagate"
        assert report.version == 101
        oracle = dense_full_forward(
            model.params, build_network(warmup + delta),
            S2V_CONFIG.propagation_rounds,
        )
        assert report.refreshed
        for node in report.refreshed:
            stored = np.array(hbase.get(TABLE, node, EMBEDDINGS_FAMILY)["s2v"])
            assert np.allclose(stored, oracle[node], atol=1e-8), node

    def test_untouched_rows_stay_bit_unchanged(self):
        warmup, _ = self.split_stream(8)
        model = fitted_model(warmup)
        hbase = store_with_embeddings(model)
        before = snapshot_rows(hbase)
        refresher = EmbeddingRefresher(
            model, hbase,
            config=EmbeddingRefreshConfig(mode="propagate"),
            warmup_transactions=warmup, start_version=100,
        )
        # One brand-new edge between two fresh accounts: only their
        # radius-(T-1) ball (just themselves here) may be rewritten.
        refresher.observe_transaction(make_txn(999, "fresh_a", "fresh_b", day=9))
        report = refresher.refresh()
        touched = set(report.refreshed)
        assert touched == {"fresh_a", "fresh_b"}
        after = snapshot_rows(hbase)
        for node, cells in before.items():
            if node not in touched:
                assert after[node] == cells, f"untouched row {node} was rewritten"

    def test_retrain_requires_seeded_config(self):
        warmup, _ = self.split_stream(9)
        network = build_network(warmup)
        labels = node_labels_from_transactions(warmup)
        unseeded = Structure2Vec(
            Structure2VecConfig(dimension=6, epochs=4, seed=None), rng=3
        ).fit(network, node_labels=labels)
        with pytest.raises(ServingError):
            EmbeddingRefresher(
                unseeded, HBaseClient(), config=EmbeddingRefreshConfig(mode="retrain")
            )

    def test_auto_refresh_threshold_triggers_pass(self):
        warmup, delta = self.split_stream(10)
        model = fitted_model(warmup)
        hbase = store_with_embeddings(model)
        refresher = EmbeddingRefresher(
            model, hbase,
            config=EmbeddingRefreshConfig(mode="propagate", auto_refresh_threshold=4),
            warmup_transactions=warmup, start_version=100,
        )
        for transaction in delta:
            refresher.observe_transaction(transaction)
        assert refresher.refreshes >= 1
        assert len(refresher.queue) < 4

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        cut_fraction=st.floats(min_value=0.3, max_value=0.9),
    )
    def test_retrain_converges_to_full_fit_on_any_prefix(self, seed, cut_fraction):
        """Satellite 1: for any seeded stream prefix, incremental re-embed of
        touched accounts is bit-identical to a from-scratch fit on the
        cumulative graph, and untouched accounts' rows are bit-unchanged."""
        transactions = random_transactions(seed, count=60)
        cut = max(1, int(len(transactions) * cut_fraction))
        warmup, delta = transactions[:cut], transactions[cut:]
        model = fitted_model(warmup)
        hbase = store_with_embeddings(model)
        before = snapshot_rows(hbase)
        refresher = EmbeddingRefresher(
            model, hbase,
            config=EmbeddingRefreshConfig(mode="retrain"),
            warmup_transactions=warmup, start_version=100,
        )
        for transaction in delta:
            refresher.observe_transaction(transaction)
        report = refresher.refresh()
        if not delta:
            assert report.refreshed == []
            return
        oracle = Structure2Vec(S2V_CONFIG).fit(
            build_network(transactions),
            node_labels=node_labels_from_transactions(transactions),
        ).embeddings()
        touched = set(report.refreshed)
        for node in report.refreshed:
            stored = np.array(hbase.get(TABLE, node, EMBEDDINGS_FAMILY)["s2v"])
            assert np.array_equal(stored, oracle[node]), node
        after = snapshot_rows(hbase)
        for node, cells in before.items():
            if node not in touched:
                assert after[node] == cells

    @pytest.mark.determinism
    def test_refresh_is_deterministic(self, record_checksum):
        """The refreshed rows are a pure function of the stream (determinism
        tier: checksummed across PYTHONHASHSEED values)."""
        warmup, delta = self.split_stream(11)
        model = fitted_model(warmup)
        hbase = store_with_embeddings(model)
        refresher = EmbeddingRefresher(
            model, hbase,
            config=EmbeddingRefreshConfig(mode="retrain"),
            warmup_transactions=warmup, start_version=100,
        )
        for transaction in delta:
            refresher.observe_transaction(transaction)
        report = refresher.refresh()
        payload = {
            "order": report.refreshed,
            "rows": {
                node: hbase.get(TABLE, node, EMBEDDINGS_FAMILY)["s2v"]
                for node in sorted(report.refreshed)
            },
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()
        record_checksum("refreshed_rows", digest)


class TestStreamingIntegration:
    def test_updater_forwards_to_refresher(self):
        transactions = random_transactions(12)
        warmup, delta = transactions[:40], transactions[40:]
        model = fitted_model(warmup)
        hbase = store_with_embeddings(model)
        refresher = EmbeddingRefresher(
            model, hbase,
            config=EmbeddingRefreshConfig(mode="propagate"),
            warmup_transactions=warmup, start_version=100,
        )
        aggregator = SlidingWindowAggregator()
        updater = StreamingFeatureUpdater(
            aggregator, hbase, TABLE,
            start_version=100, embedding_refresher=refresher,
        )
        ingested = updater.observe_stream(delta)
        assert ingested == len(delta)
        assert refresher.events_observed == len(delta)
        assert len(refresher.queue) > 0
        report = refresher.refresh()
        assert report.refreshed
        # Both families now carry streaming writes: aggregates from the
        # updater's write-through, embeddings from the refresh pass.
        sample = delta[0].payer_id
        assert hbase.get(TABLE, sample, AGGREGATES_FAMILY)
        assert "s2v" in hbase.get(TABLE, sample, EMBEDDINGS_FAMILY)
