"""Offline/online parity via the shared FeaturePlan.

The core contract of the refactor: the offline :class:`FeatureAssembler` and
the online HBase-backed :class:`ModelServer` execute the *same* serialisable
:class:`FeaturePlan` through the same :class:`FeaturePlanExecutor`, so the
vector a transaction is scored with online is element-wise identical to the
one it would have been trained on offline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import OfflineTrainingPipeline, SlicePreparation
from repro.exceptions import FeatureError
from repro.features.assembler import EmbeddingSide, FeatureAssembler
from repro.features.basic import BASIC_FEATURE_NAMES, BasicFeatureExtractor
from repro.features.plan import (
    EmbeddingBlockSpec,
    FeaturePlan,
    FeaturePlanExecutor,
    InMemoryFeatureSource,
)
from repro.hbase.client import HBaseClient
from repro.models.gbdt import GradientBoostingClassifier
from repro.nrl.embeddings import EmbeddingSet
from repro.serving import ModelServer, ModelServerConfig, TransactionRequest


@pytest.fixture(scope="module")
def embedding_sets(world):
    """Deterministic stand-in embeddings covering every user."""
    rng = np.random.default_rng(23)
    user_ids = sorted(world.profiles_by_id)
    dw = EmbeddingSet(user_ids, rng.normal(size=(len(user_ids), 8)), name="dw")
    s2v = EmbeddingSet(user_ids, rng.normal(size=(len(user_ids), 4)), name="s2v")
    return {"dw": dw, "s2v": s2v}


class TestFeaturePlan:
    def test_json_round_trip(self):
        plan = FeaturePlan(
            embedding_blocks=(
                EmbeddingBlockSpec("dw", 8),
                EmbeddingBlockSpec("s2v", 4),
            ),
            embedding_side="both",
        )
        restored = FeaturePlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.feature_names == plan.feature_names
        assert restored.num_features == 52 + 2 * (8 + 4)

    def test_rejects_bad_specs(self):
        with pytest.raises(FeatureError):
            FeaturePlan(embedding_side="neither")
        with pytest.raises(FeatureError):
            FeaturePlan(
                embedding_blocks=(
                    EmbeddingBlockSpec("dw", 8),
                    EmbeddingBlockSpec("dw", 4),
                )
            )
        with pytest.raises(FeatureError):
            EmbeddingBlockSpec("dw", 0)

    def test_feature_names_match_legacy_assembler_layout(self, world, embedding_sets):
        assembler = FeatureAssembler(
            world.profiles_by_id, embedding_sets, embedding_side=EmbeddingSide.BOTH
        )
        names = assembler.plan.feature_names
        assert names[:52] == BASIC_FEATURE_NAMES
        assert names[52] == "dw_payer_0"
        assert names[52 + 8] == "dw_payee_0"
        assert names[52 + 16] == "s2v_payer_0"
        assert len(names) == 52 + 2 * 12

    def test_plan_mismatch_with_sources_raises(self, world, dataset):
        plan = FeaturePlan(embedding_blocks=(EmbeddingBlockSpec("dw", 8),))
        executor = FeaturePlanExecutor(
            plan, InMemoryFeatureSource(world.profiles_by_id, {})
        )
        with pytest.raises(FeatureError):
            executor.assemble_single(dataset.test_transactions[0])


class TestVectorisedBasicExtraction:
    def test_batch_matches_scalar_reference(self, world, dataset):
        extractor = BasicFeatureExtractor(world.profiles_by_id)
        transactions = dataset.test_transactions[:250]
        batch = extractor.extract(transactions, with_labels=True)
        reference = np.vstack([extractor.extract_one(t) for t in transactions])
        assert np.allclose(batch.values, reference)
        assert batch.values.shape == (250, 52)

    def test_unknown_users_fall_back_to_default(self, dataset):
        extractor = BasicFeatureExtractor({})
        transactions = dataset.test_transactions[:5]
        batch = extractor.extract(transactions, with_labels=False)
        reference = np.vstack([extractor.extract_one(t) for t in transactions])
        assert np.allclose(batch.values, reference)


class TestOfflineOnlineParity:
    @pytest.fixture()
    def deployed(self, world, dataset, network, embedding_sets):
        """Offline assembler + a Model Server fed from published HBase rows."""
        pipeline = OfflineTrainingPipeline(world.profiles_by_id)
        preparation = SlicePreparation(
            dataset=dataset, network=network, embeddings=dict(embedding_sets)
        )
        hbase = HBaseClient()
        pipeline.publish_features(preparation, hbase)

        assembler = FeatureAssembler(
            world.profiles_by_id, embedding_sets, embedding_side=EmbeddingSide.BOTH
        )
        train = assembler.assemble(dataset.train_transactions[:300])
        model = GradientBoostingClassifier(num_trees=10, seed=0).fit(
            train.values, train.labels
        )
        server = ModelServer(hbase, ModelServerConfig())
        server.load_model(model, version="parity_v1", threshold=0.5, plan=assembler.plan)
        return assembler, server, model

    def test_online_vector_identical_to_offline(self, deployed, dataset):
        assembler, server, _ = deployed
        for txn in dataset.test_transactions[:25]:
            offline = assembler.assemble_single(txn)
            online = server.plan_executor.assemble_single(
                TransactionRequest.from_transaction(txn).to_transaction()
            )
            np.testing.assert_array_equal(offline, online)

    def test_online_batch_identical_to_offline_matrix(self, deployed, dataset):
        assembler, server, _ = deployed
        transactions = dataset.test_transactions[:100]
        offline = assembler.assemble(transactions, with_labels=False)
        online = server.plan_executor.assemble(transactions, with_labels=False)
        assert offline.feature_names == online.feature_names
        np.testing.assert_array_equal(offline.values, online.values)

    def test_served_probability_matches_offline_scoring(self, deployed, dataset):
        assembler, server, model = deployed
        txn = dataset.test_transactions[0]
        response = server.predict(TransactionRequest.from_transaction(txn))
        offline_probability = float(
            model.predict_proba(assembler.assemble_single(txn).reshape(1, -1))[0]
        )
        assert response.fraud_probability == pytest.approx(offline_probability)

    def test_plan_survives_registry_round_trip(self, deployed):
        assembler, _, _ = deployed
        payload = assembler.plan.to_json()
        assert FeaturePlan.from_json(payload) == assembler.plan


class TestAggregationBlockParity:
    """The aggregation block assembles identically from both feature sources."""

    @pytest.fixture()
    def deployed_with_aggregates(self, world, dataset, embedding_sets):
        from repro.features.aggregation import AggregationConfig, TransactionAggregator
        from repro.hbase.client import AGGREGATES_FAMILY

        aggregator = TransactionAggregator(AggregationConfig(window_days=14)).fit(
            dataset.train_transactions, as_of_day=dataset.spec.test_day
        )
        assembler = FeatureAssembler(
            world.profiles_by_id, embedding_sets, aggregator=aggregator
        )
        hbase = HBaseClient()
        pipeline = OfflineTrainingPipeline(world.profiles_by_id)
        preparation = SlicePreparation(
            dataset=dataset, network=None, embeddings=dict(embedding_sets)
        )
        pipeline.publish_features(preparation, hbase)
        hbase.bulk_load(
            "titant_features",
            AGGREGATES_FAMILY,
            aggregator.snapshot_rows(),
            version=dataset.spec.test_day,
        )
        train = assembler.assemble(dataset.train_transactions[:200])
        model = GradientBoostingClassifier(num_trees=5, seed=1).fit(
            train.values, train.labels
        )
        server = ModelServer(hbase, ModelServerConfig())
        server.load_model(model, version="agg_v1", threshold=0.5, plan=assembler.plan)
        return assembler, server

    def test_layout_has_aggregation_block(self, deployed_with_aggregates):
        assembler, _ = deployed_with_aggregates
        from repro.features.aggregation import AGGREGATION_FEATURE_NAMES

        names = assembler.plan.feature_names
        assert names[52:64] == AGGREGATION_FEATURE_NAMES
        assert names[64] == "dw_payer_0"
        assert assembler.plan.num_features == 52 + 12 + 2 * 12

    def test_online_matrix_identical_to_offline(self, deployed_with_aggregates, dataset):
        assembler, server = deployed_with_aggregates
        transactions = dataset.test_transactions[:60]
        offline = assembler.assemble(transactions, with_labels=False)
        online = server.plan_executor.assemble(transactions, with_labels=False)
        assert offline.feature_names == online.feature_names
        np.testing.assert_array_equal(offline.values, online.values)

    def test_missing_aggregate_rows_score_as_cold_accounts(self, world, dataset):
        from repro.features.aggregation import AggregationWindowSpec

        plan = FeaturePlan(aggregation=AggregationWindowSpec())
        executor = FeaturePlanExecutor(
            plan, InMemoryFeatureSource(world.profiles_by_id)
        )
        matrix = executor.assemble(dataset.test_transactions[:5], with_labels=False)
        block = matrix.values[:, 52:64]
        np.testing.assert_array_equal(block[:, :-1], np.zeros((5, 11)))
        np.testing.assert_array_equal(block[:, -1], np.ones(5))  # new payers
