"""Tests of the feature layer: basic features, discretisation, aggregation, assembly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FeatureError, NotFittedError
from repro.features.aggregation import AggregationConfig, TransactionAggregator
from repro.features.assembler import EmbeddingSide, FeatureAssembler
from repro.features.basic import BASIC_FEATURE_NAMES, BasicFeatureExtractor
from repro.features.discretization import (
    Discretizer,
    DiscretizerConfig,
    EqualWidthBinner,
    QuantileBinner,
    discretize_array,
)
from repro.features.matrix import FeatureMatrix
from repro.nrl.embeddings import EmbeddingSet


class TestBasicFeatures:
    def test_exactly_52_features(self):
        assert len(BASIC_FEATURE_NAMES) == 52
        assert len(set(BASIC_FEATURE_NAMES)) == 52

    def test_extraction_shape_and_labels(self, world, dataset):
        extractor = BasicFeatureExtractor(world.profiles_by_id)
        matrix = extractor.extract(dataset.train_transactions[:200])
        assert matrix.num_features == 52
        assert matrix.num_rows == 200
        assert matrix.labels is not None and matrix.labels.shape == (200,)
        assert set(np.unique(matrix.labels)) <= {0.0, 1.0}

    def test_values_are_finite(self, feature_matrices):
        train, test = feature_matrices
        assert np.isfinite(train.values).all()
        assert np.isfinite(test.values).all()

    def test_unknown_user_gets_default_profile(self, world, dataset):
        extractor = BasicFeatureExtractor({})
        vector = extractor.extract_one(dataset.test_transactions[0])
        assert vector.shape == (52,)
        assert np.isfinite(vector).all()

    def test_gender_one_hot_consistency(self, world, dataset):
        extractor = BasicFeatureExtractor(world.profiles_by_id)
        matrix = extractor.extract(dataset.train_transactions[:300])
        one_hot = (
            matrix.column("payer_gender_f")
            + matrix.column("payer_gender_m")
            + matrix.column("payer_gender_u")
        )
        assert np.allclose(one_hot, 1.0)

    def test_user_feature_row_for_hbase(self, world):
        extractor = BasicFeatureExtractor(world.profiles_by_id)
        user_id = world.profiles[0].user_id
        row = extractor.extract_user_features(user_id)
        assert "age" in row and "kyc_level" in row
        assert row["age"] == float(world.profiles[0].age)


class TestFeatureMatrix:
    def test_column_and_select(self):
        matrix = FeatureMatrix(["a", "b"], np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert matrix.column("b").tolist() == [2.0, 4.0]
        selected = matrix.select(["b"])
        assert selected.feature_names == ["b"]
        with pytest.raises(FeatureError):
            matrix.column("missing")

    def test_hstack_rejects_duplicates_and_mismatched_rows(self):
        left = FeatureMatrix(["a"], np.ones((3, 1)))
        right_dup = FeatureMatrix(["a"], np.ones((3, 1)))
        right_short = FeatureMatrix(["b"], np.ones((2, 1)))
        with pytest.raises(FeatureError):
            left.hstack(right_dup)
        with pytest.raises(FeatureError):
            left.hstack(right_short)

    def test_take_preserves_labels_and_ids(self):
        matrix = FeatureMatrix(
            ["a"], np.arange(4).reshape(4, 1), row_ids=["r0", "r1", "r2", "r3"], labels=[0, 1, 0, 1]
        )
        subset = matrix.take([1, 3])
        assert subset.row_ids == ["r1", "r3"]
        assert subset.labels.tolist() == [1.0, 1.0]

    def test_shape_validation(self):
        with pytest.raises(FeatureError):
            FeatureMatrix(["a", "b"], np.ones((2, 3)))
        with pytest.raises(FeatureError):
            FeatureMatrix(["a"], np.ones((2, 1)), labels=[1.0])


class TestDiscretization:
    def test_quantile_binner_spreads_rows(self):
        values = np.random.default_rng(0).exponential(size=1000)
        bins = QuantileBinner(10).fit_transform(values)
        counts = np.bincount(bins.astype(int), minlength=10)
        assert counts.min() > 50  # roughly equal-frequency

    def test_equal_width_binner_monotonic(self):
        values = np.linspace(0, 100, 500)
        binner = EqualWidthBinner(5).fit(values)
        bins = binner.transform(values)
        assert (np.diff(bins) >= 0).all()
        assert bins.min() == 0 and bins.max() == 4

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            QuantileBinner(4).transform(np.array([1.0, 2.0]))

    def test_discretizer_passthrough_binary_columns(self, feature_matrices):
        train, _ = feature_matrices
        discretizer = Discretizer(DiscretizerConfig(num_bins=8))
        transformed = discretizer.fit_transform(train)
        # Binary flags stay binary.
        assert set(np.unique(transformed.column("is_new_device"))) <= {0.0, 1.0}
        # Continuous columns become small bin indices.
        assert transformed.column("amount").max() <= 7

    def test_discretizer_one_hot_expands_columns(self, feature_matrices):
        train, _ = feature_matrices
        discretizer = Discretizer(DiscretizerConfig(num_bins=6, one_hot=True))
        transformed = discretizer.fit_transform(train)
        assert transformed.num_features > train.num_features
        assert set(np.unique(transformed.values)) <= {0.0, 1.0} | set(
            np.unique(train.values[:, [train.feature_names.index(n) for n in train.feature_names if n in ("payer_home_city_bucket",)]]).tolist()
        ) or transformed.values.max() <= train.values.max()

    def test_discretize_array_requires_2d(self):
        with pytest.raises(FeatureError):
            discretize_array(np.arange(5))


class TestAggregation:
    def test_aggregates_match_manual_counts(self, dataset):
        aggregator = TransactionAggregator(AggregationConfig(window_days=6)).fit(
            dataset.train_transactions, as_of_day=dataset.spec.test_day
        )
        payer = dataset.train_transactions[0].payer_id
        manual = [
            t
            for t in dataset.train_transactions
            if t.payer_id == payer and dataset.spec.test_day - 6 <= t.day < dataset.spec.test_day
        ]
        row = aggregator.user_row(payer)
        assert row["out_count"] == float(len(manual))
        assert row["out_amount_sum"] == pytest.approx(sum(t.amount for t in manual))

    def test_transform_shape(self, dataset):
        aggregator = TransactionAggregator().fit(
            dataset.train_transactions, as_of_day=dataset.spec.test_day
        )
        matrix = aggregator.transform(dataset.test_transactions[:50])
        assert matrix.num_rows == 50
        assert matrix.num_features == len(aggregator.feature_names)

    def test_transform_before_fit_raises(self, dataset):
        with pytest.raises(FeatureError):
            TransactionAggregator().transform(dataset.test_transactions[:5])


class TestFeatureAssembler:
    def _embeddings(self, dataset, dim=4):
        users = sorted({t.payer_id for t in dataset.train_transactions} | {t.payee_id for t in dataset.train_transactions})
        rng = np.random.default_rng(0)
        return EmbeddingSet(users, rng.normal(size=(len(users), dim)), name="dw")

    def test_concatenation_order_and_width(self, world, dataset):
        embeddings = self._embeddings(dataset)
        assembler = FeatureAssembler(world.profiles_by_id, {"dw": embeddings})
        matrix = assembler.assemble(dataset.train_transactions[:20])
        assert matrix.num_features == 52 + 2 * 4
        assert matrix.feature_names[:52] == BASIC_FEATURE_NAMES
        assert matrix.feature_names[52] == "dw_payer_0"
        assert matrix.feature_names[-1] == "dw_payee_3"

    def test_payee_side_only(self, world, dataset):
        embeddings = self._embeddings(dataset)
        assembler = FeatureAssembler(
            world.profiles_by_id, {"dw": embeddings}, embedding_side=EmbeddingSide.PAYEE
        )
        matrix = assembler.assemble(dataset.train_transactions[:10])
        assert matrix.num_features == 52 + 4

    def test_missing_embedding_rows_are_zero(self, world, dataset):
        embeddings = EmbeddingSet(["nobody"], np.ones((1, 4)), name="dw")
        assembler = FeatureAssembler(world.profiles_by_id, {"dw": embeddings})
        matrix = assembler.assemble(dataset.train_transactions[:5])
        assert np.allclose(matrix.values[:, 52:], 0.0)

    def test_single_vector_matches_batch(self, world, dataset):
        embeddings = self._embeddings(dataset)
        assembler = FeatureAssembler(world.profiles_by_id, {"dw": embeddings})
        txn = dataset.test_transactions[0]
        single = assembler.assemble_single(txn)
        batch = assembler.assemble([txn], with_labels=False)
        assert np.allclose(single, batch.values[0])


@settings(max_examples=20, deadline=None)
@given(
    values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=20, max_size=200),
    num_bins=st.integers(2, 20),
)
def test_binner_output_range_property(values, num_bins):
    """Quantile bins always land inside [0, num_bins)."""
    array = np.array(values)
    bins = QuantileBinner(num_bins).fit_transform(array)
    assert bins.min() >= 0
    assert bins.max() < num_bins
