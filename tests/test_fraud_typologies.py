"""Labelled fraud-typology suite regression tests (PR 10).

The five typology behaviour models (mule/relay chains, account takeover,
bust-out, merchant collusion, smurfing — :mod:`repro.datagen.fraud`) must be
seeded and deterministic, batch-size invariant, checkpoint/resume safe, and
respect :meth:`WorldConfig.validate`'s fraud budget — the same contracts the
legacy campaign model carries, now per typology.  Each scenario's structural
signature (chain hops, sub-threshold amounts, one-shot bust-outs, business
hours rings) is asserted directly on the emitted, labelled transactions.
"""

from __future__ import annotations

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import (
    FRAUD_TYPOLOGIES,
    ScalableWorldStream,
    TypologyConfig,
    WorldConfig,
    WorldStream,
)
from repro.datagen.profiles import ProfileConfig
from repro.exceptions import DataGenerationError

TYPOLOGIES = TypologyConfig()


def typology_config(num_users: int = 260, num_days: int = 12, seed: int = 17) -> WorldConfig:
    """A small world whose campaign frauds come from the labelled suite."""
    return WorldConfig(
        profile=ProfileConfig(
            num_users=num_users,
            num_communities=6,
            fraudster_fraction=0.1,
            seed=seed,
        ),
        num_days=num_days,
        transactions_per_user_per_day=0.6,
        typologies=TypologyConfig(),
        seed=seed,
    )


@pytest.fixture(scope="module")
def typology_transactions():
    """One drained typology world shared by the signature assertions."""
    return list(WorldStream(typology_config()))


def by_typology(transactions):
    groups = defaultdict(list)
    for txn in transactions:
        if txn.fraud_typology:
            groups[txn.fraud_typology].append(txn)
    return groups


class TestDeterminismAndCoverage:
    def test_world_stream_deterministic_and_emits_all_five(self, typology_transactions):
        again = list(WorldStream(typology_config()))
        assert again == typology_transactions
        assert set(by_typology(typology_transactions)) == set(FRAUD_TYPOLOGIES)

    def test_scalable_stream_deterministic_and_emits_all_five(self):
        config = typology_config(num_users=2_000, num_days=10, seed=29)
        first = list(ScalableWorldStream(config))
        second = list(ScalableWorldStream(typology_config(num_users=2_000, num_days=10, seed=29)))
        assert second == first
        assert set(by_typology(first)) == set(FRAUD_TYPOLOGIES)

    def test_only_fraud_rows_carry_typology_tags(self, typology_transactions):
        for txn in typology_transactions:
            if not txn.is_fraud:
                assert txn.fraud_typology == ""
            else:
                # Campaign frauds carry their generating typology; background
                # fraud (if any at this rate) stays untagged by design.
                assert txn.fraud_typology in FRAUD_TYPOLOGIES + ("",)

    @settings(max_examples=8, deadline=None)
    @given(batch_size=st.integers(min_value=1, max_value=500))
    def test_batch_size_invariance(self, batch_size):
        config = typology_config(num_users=120, num_days=8, seed=3)
        expected = list(WorldStream(config))
        rebatched = [
            txn
            for batch in WorldStream(
                typology_config(num_users=120, num_days=8, seed=3)
            ).batches(batch_size)
            for txn in batch
        ]
        assert rebatched == expected


class TestCheckpointResume:
    def test_mid_day_resume_continues_the_exact_sequence(self):
        reference = list(WorldStream(typology_config(seed=41)))
        stream = WorldStream(typology_config(seed=41))
        events = stream.events()
        consumed = [next(events) for _ in range(len(reference) // 3)]
        checkpoint = stream.checkpoint()
        assert checkpoint.offset > 0 or checkpoint.day > 0

        resumed = WorldStream(typology_config(seed=41))
        resumed.seek(checkpoint)
        assert consumed + list(resumed) == reference

    def test_scalable_stream_resumes_mid_day(self):
        config = typology_config(num_users=1_500, num_days=8, seed=43)
        reference = list(ScalableWorldStream(config))
        stream = ScalableWorldStream(typology_config(num_users=1_500, num_days=8, seed=43))
        events = stream.events()
        consumed = [next(events) for _ in range(len(reference) // 2)]
        checkpoint = stream.checkpoint()
        resumed = ScalableWorldStream(typology_config(num_users=1_500, num_days=8, seed=43))
        resumed.seek(checkpoint)
        assert consumed + list(resumed) == reference


class TestBudgetAndConfigValidation:
    def test_typology_volume_exceeding_budget_rejected(self):
        config = typology_config(num_users=100)
        config.profile.fraudster_fraction = 0.2
        config.transactions_per_user_per_day = 0.35
        config.typologies = TypologyConfig(
            active_day_probability=1.0,
            takeover_burst=50,
            bust_out_cashouts=50,
            collusion_ring_size=50,
            smurf_transfers=50,
        )
        with pytest.raises(DataGenerationError, match="transaction budget"):
            config.validate()

    def test_typology_config_rejects_bad_knobs(self):
        with pytest.raises(DataGenerationError, match="unknown typologies"):
            TypologyConfig(enabled=("mule_chain", "ponzi")).validate()
        with pytest.raises(DataGenerationError, match="duplicates"):
            TypologyConfig(enabled=("smurfing", "smurfing")).validate()
        with pytest.raises(DataGenerationError, match="must not be empty"):
            TypologyConfig(enabled=()).validate()
        with pytest.raises(DataGenerationError, match="active_day_probability"):
            TypologyConfig(active_day_probability=1.5).validate()
        with pytest.raises(DataGenerationError, match="smurf_transfers"):
            TypologyConfig(smurf_transfers=0).validate()
        with pytest.raises(DataGenerationError, match="smurf_threshold"):
            TypologyConfig(smurf_threshold=-1.0).validate()
        TypologyConfig().validate()

    def test_enabled_subset_limits_emitted_typologies(self):
        config = typology_config(seed=47)
        config.typologies = TypologyConfig(enabled=("smurfing", "account_takeover"))
        tagged = by_typology(WorldStream(config))
        assert set(tagged) <= {"smurfing", "account_takeover"}
        assert tagged


class TestTypologySignatures:
    def test_merchant_collusion_is_round_amounts_in_business_hours(self, typology_transactions):
        rings = by_typology(typology_transactions)["merchant_collusion"]
        assert rings
        for txn in rings:
            assert 9 <= txn.hour < 18
            assert txn.amount % 50.0 == 0.0

    def test_smurfing_stays_below_the_reporting_threshold(self, typology_transactions):
        swarm = by_typology(typology_transactions)["smurfing"]
        assert swarm
        for txn in swarm:
            assert txn.amount < TYPOLOGIES.smurf_threshold

    def test_bust_out_fires_at_most_once_per_account(self, typology_transactions):
        # The fraudster is the *payer* in a bust-out (outbound cash-out, the
        # reverse of the gathering star), and each account busts exactly once.
        bust_days = defaultdict(set)
        for txn in by_typology(typology_transactions)["bust_out"]:
            bust_days[txn.payer_id].add(txn.day)
        assert bust_days
        for payer, days in bust_days.items():
            assert len(days) == 1, f"{payer} busted on multiple days {sorted(days)}"
            assert min(days) >= TYPOLOGIES.bust_out_buildup_days

    def test_account_takeover_drains_one_victim_in_a_tight_burst(self, typology_transactions):
        bursts = defaultdict(list)
        for txn in by_typology(typology_transactions)["account_takeover"]:
            bursts[(txn.payee_id, txn.day)].append(txn)
        assert bursts
        for (payee, _), txns in bursts.items():
            assert len({t.payer_id for t in txns}) == 1  # single compromised victim
            hours = [t.hour for t in txns]
            assert max(hours) - min(hours) <= len(txns)  # same small-hours window

    def test_mule_chains_relay_with_a_skim_at_each_hop(self, typology_transactions):
        hops = defaultdict(list)
        for txn in by_typology(typology_transactions)["mule_chain"]:
            hops[(txn.day, txn.label_available_day)].append(txn)
        relayed = [sorted(txns, key=lambda t: t.hour) for txns in hops.values() if len(txns) > 1]
        assert relayed
        for chain in relayed:
            for upstream, downstream in zip(chain, chain[1:]):
                if upstream.payee_id == downstream.payer_id:  # consecutive hop
                    assert downstream.amount < upstream.amount  # the skim
