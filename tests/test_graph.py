"""Tests of the transaction network and random-walk layers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graph.builder import NetworkBuilder, build_network
from repro.graph.metrics import (
    degree_statistics,
    gathering_coefficient,
    shared_neighbor_fraction,
    two_hop_neighbors,
)
from repro.graph.network import TransactionNetwork
from repro.graph.random_walk import RandomWalkConfig, RandomWalker, generate_walks, split_corpus


class TestTransactionNetwork:
    def test_edge_accumulation(self):
        network = TransactionNetwork()
        network.add_edge("a", "b", 1.0)
        network.add_edge("a", "b", 2.0)
        assert network.num_edges == 1
        assert network.edge_weight("a", "b") == pytest.approx(3.0)

    def test_self_loops_rejected(self):
        network = TransactionNetwork()
        with pytest.raises(GraphError):
            network.add_edge("a", "a")

    def test_non_positive_weight_rejected(self):
        network = TransactionNetwork()
        with pytest.raises(GraphError):
            network.add_edge("a", "b", 0.0)

    def test_neighbors_merge_directions(self):
        network = TransactionNetwork()
        network.add_edge("a", "b", 1.0)
        network.add_edge("b", "a", 2.0)
        assert network.neighbors("a") == {"b": 3.0}
        assert network.in_degree("a") == 1
        assert network.out_degree("a") == 1

    def test_node_index_round_trip(self):
        network = TransactionNetwork()
        network.add_edge("x", "y")
        assert network.node_at(network.node_index("x")) == "x"
        with pytest.raises(GraphError):
            network.node_index("missing")

    def test_subgraph_induced(self):
        network = TransactionNetwork()
        network.add_edge("a", "b")
        network.add_edge("b", "c")
        network.add_edge("c", "d")
        sub = network.subgraph(["a", "b", "c"])
        assert set(sub.nodes()) == {"a", "b", "c"}
        assert sub.has_edge("a", "b") and sub.has_edge("b", "c")
        assert not sub.has_edge("c", "d")

    def test_to_networkx(self):
        network = TransactionNetwork()
        network.add_edge("a", "b", 2.0)
        graph = network.to_networkx()
        assert graph.number_of_nodes() == 2
        assert graph["a"]["b"]["weight"] == pytest.approx(2.0)


class TestNetworkBuilder:
    def test_build_from_slice(self, dataset, network):
        assert network.num_nodes > 0
        assert network.num_edges > 0
        payers = {t.payer_id for t in dataset.network_transactions}
        assert all(p in network for p in list(payers)[:50])

    def test_weighting_modes(self, dataset):
        count_net = build_network(dataset.network_transactions[:500], weighting="count")
        amount_net = build_network(dataset.network_transactions[:500], weighting="amount")
        sample_edge = next(iter(count_net.edges()))
        payer, payee, _ = sample_edge
        assert amount_net.edge_weight(payer, payee) >= count_net.edge_weight(payer, payee)

    def test_min_edge_weight_prunes(self, dataset):
        dense = build_network(dataset.network_transactions)
        pruned = build_network(dataset.network_transactions, min_edge_weight=3.0)
        assert pruned.num_edges < dense.num_edges

    def test_unknown_weighting_rejected(self):
        with pytest.raises(GraphError):
            NetworkBuilder(weighting="bogus")  # type: ignore[arg-type]


class TestRandomWalks:
    def test_walk_length_and_start(self, network):
        walker = RandomWalker(network, RandomWalkConfig(walk_length=12, num_walks_per_node=1, seed=1))
        start = network.nodes()[0]
        walk = walker.walk_from(start)
        assert walk[0] == start
        assert 1 <= len(walk) <= 12
        assert all(node in network for node in walk)

    def test_walks_follow_edges(self, network):
        walker = RandomWalker(network, RandomWalkConfig(walk_length=8, num_walks_per_node=1, seed=2))
        walk = walker.walk_from(network.nodes()[1])
        for previous, current in zip(walk, walk[1:]):
            assert current in network.neighbors(previous)

    def test_corpus_size(self, network):
        walks = generate_walks(network, walk_length=5, num_walks_per_node=2, rng=3)
        assert len(walks) == 2 * network.num_nodes

    def test_walks_reproducible(self, network):
        first = generate_walks(network, walk_length=6, num_walks_per_node=1, rng=11)
        second = generate_walks(network, walk_length=6, num_walks_per_node=1, rng=11)
        assert first == second

    def test_invalid_config(self):
        with pytest.raises(GraphError):
            RandomWalkConfig(walk_length=1).validate()
        with pytest.raises(GraphError):
            RandomWalkConfig(num_walks_per_node=0).validate()

    def test_split_corpus_covers_everything(self):
        corpus = [[str(i)] for i in range(10)]
        parts = split_corpus(corpus, 3)
        assert sum(len(p) for p in parts) == 10
        assert len(parts) == 3

    def test_iter_walk_batches_matches_iter_walks_seeded(self, network):
        """Same seed ⇒ identical corpora from the streaming and flat APIs."""
        config = RandomWalkConfig(walk_length=8, num_walks_per_node=2, seed=17)
        flat = list(RandomWalker(network, config).iter_walks())
        batched_walker = RandomWalker(network, config)
        batched = [
            walk
            for batch in batched_walker.iter_walk_batches()
            for walk in batched_walker.batch_to_walks(batch)
        ]
        assert flat == batched

    def test_walk_batches_invariant_to_batch_size(self, network):
        """The corpus must not depend on how the walks are chunked."""
        corpora = []
        for batch_size in (1, 7, 10_000):
            config = RandomWalkConfig(
                walk_length=6, num_walks_per_node=2, batch_size=batch_size, seed=23
            )
            corpora.append(list(RandomWalker(network, config).iter_walks()))
        assert corpora[0] == corpora[1] == corpora[2]

    def test_walk_batch_follows_edges_and_pads_after_termination(self):
        network = TransactionNetwork()
        network.add_edge("a", "b")
        network.add_edge("b", "c")
        network.add_edge("sink_payer", "sink")  # 'sink' only reachable, walkable back
        walker = RandomWalker(network, RandomWalkConfig(walk_length=6, num_walks_per_node=1, seed=5))
        starts = np.array([network.node_index(n) for n in ("a", "b", "sink")])
        batch = walker.walk_batch(starts)
        assert batch.shape == (3, 6)
        assert (batch[:, 0] == starts).all()
        for row in batch:
            nodes = [walker.network.node_at(int(i)) for i in row if i >= 0]
            for prev, cur in zip(nodes, nodes[1:]):
                assert cur in network.neighbors(prev)
            # padding is contiguous at the tail
            padding = row < 0
            assert not padding.any() or padding[np.argmax(padding) :].all()

    def test_walk_batch_unweighted_mode(self, network):
        config = RandomWalkConfig(walk_length=5, num_walks_per_node=1, weighted=False, seed=2)
        walker = RandomWalker(network, config)
        batch = walker.walk_batch(np.arange(min(20, network.num_nodes)))
        for walk in walker.batch_to_walks(batch):
            for prev, cur in zip(walk, walk[1:]):
                assert cur in network.neighbors(prev)


class TestGraphMetrics:
    def test_two_hop_neighbors_gathering_pattern(self):
        # Three victims all transfer to the same fraudster (paper Figure 2).
        network = TransactionNetwork()
        for victim in ("v1", "v2", "v3"):
            network.add_edge(victim, "fraudster")
        for victim in ("v1", "v2", "v3"):
            others = {"v1", "v2", "v3"} - {victim}
            assert others <= two_hop_neighbors(network, victim)

    def test_shared_neighbor_fraction_is_one_for_victims(self):
        network = TransactionNetwork()
        for victim in ("v1", "v2", "v3", "v4"):
            network.add_edge(victim, "fraudster")
        assert shared_neighbor_fraction(network, ["v1", "v2", "v3", "v4"]) == pytest.approx(1.0)

    def test_gathering_coefficient_on_world(self, world, network):
        fraud_victims = {}
        for txn in world.transactions:
            if txn.is_fraud and txn.payer_id in network and txn.payee_id in network:
                fraud_victims.setdefault(txn.payee_id, set()).add(txn.payer_id)
        fraud_victims = {k: v for k, v in fraud_victims.items() if len(v) >= 2}
        if fraud_victims:
            assert gathering_coefficient(network, fraud_victims) > 0.5

    def test_degree_statistics(self, network):
        stats = degree_statistics(network)
        assert stats.mean_in_degree == pytest.approx(stats.mean_out_degree)
        assert stats.max_in_degree >= stats.mean_in_degree


@settings(max_examples=25, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=60,
    )
)
def test_network_degree_sum_property(edges):
    """Sum of in-degrees equals sum of out-degrees equals distinct edge count."""
    network = TransactionNetwork()
    for payer, payee in edges:
        network.add_edge(f"u{payer}", f"u{payee}")
    total_in = sum(network.in_degree(n) for n in network.nodes())
    total_out = sum(network.out_degree(n) for n in network.nodes())
    assert total_in == total_out == network.num_edges
