"""Tests of the Ali-HBase substrate and the online serving path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    ModelNotLoadedError,
    RowNotFoundError,
    ServingError,
    StorageError,
    TableNotFoundError,
)
from repro.hbase import HBaseClient, HBaseTable, WriteAheadLog
from repro.hbase.client import BASIC_FEATURES_FAMILY, EMBEDDINGS_FAMILY
from repro.hbase.region import RegionRouter
from repro.models.gbdt import GradientBoostingClassifier
from repro.serving import (
    AlipayServer,
    LatencyTracker,
    ModelServer,
    ModelServerConfig,
    TransactionRequest,
)
from repro.serving.alipay import TransactionOutcome


class TestHBaseTable:
    def test_put_get_latest_version(self):
        table = HBaseTable("features", ["cf"])
        table.put("zoe", "cf", {"age": 30}, version=1)
        table.put("zoe", "cf", {"age": 31}, version=2)
        assert table.get("zoe", "cf")["age"] == 31
        assert table.get("zoe", "cf", version=1)["age"] == 30

    def test_missing_row_raises(self):
        table = HBaseTable("features", ["cf"])
        with pytest.raises(RowNotFoundError):
            table.get("nobody", "cf")

    def test_version_pruning(self):
        table = HBaseTable("features", ["cf"], max_versions=2)
        for version in range(1, 5):
            table.put("zoe", "cf", {"age": version}, version=version)
        versions = table.family("cf").cell_versions("zoe", "age")
        assert versions == [3, 4]

    def test_unknown_family_rejected(self):
        table = HBaseTable("features", ["cf"])
        with pytest.raises(StorageError):
            table.get("zoe", "other")

    def test_scan_with_prefix_and_limit(self):
        table = HBaseTable("features", ["cf"])
        for index in range(10):
            table.put(f"u{index:02d}", "cf", {"x": index}, version=1)
        results = table.scan("cf", prefix="u0", limit=5)
        assert len(results) == 5
        assert all(key.startswith("u0") for key, _ in results)


class TestRegionsAndWAL:
    def test_routing_is_deterministic_and_spread(self):
        router = RegionRouter(num_regions=4)
        assert router.region_for("user_1").server_id == router.region_for("user_1").server_id
        for index in range(200):
            router.record_write(f"user_{index}")
        report = router.load_report()
        assert sum(stats["writes"] for stats in report.values()) == 200
        assert all(stats["writes"] > 0 for stats in report.values())

    def test_wal_replay_restores_table(self):
        wal = WriteAheadLog()
        original = HBaseTable("t", ["cf"])
        for index in range(5):
            wal.append("t", f"u{index}", "cf", {"x": index}, version=1)
            original.put(f"u{index}", "cf", {"x": index}, version=1)
        recovered = HBaseTable("t", ["cf"])
        assert wal.replay(recovered, table_name="t") == 5
        assert recovered.get("u3", "cf") == original.get("u3", "cf")

    def test_client_end_to_end(self):
        client = HBaseClient()
        client.create_feature_store()
        client.put("titant_features", "u1", BASIC_FEATURES_FAMILY, {"age": 30}, version=1)
        assert client.get("titant_features", "u1", BASIC_FEATURES_FAMILY)["age"] == 30
        assert client.get_or_default(
            "titant_features", "ghost", BASIC_FEATURES_FAMILY, default={"age": 0}
        ) == {"age": 0}
        with pytest.raises(TableNotFoundError):
            client.get("missing_table", "u1", BASIC_FEATURES_FAMILY)
        assert client.wal_size() == 1

    def test_get_or_default_raises_on_missing_table(self):
        client = HBaseClient()
        with pytest.raises(TableNotFoundError):
            client.get_or_default("nope", "u1", BASIC_FEATURES_FAMILY, default={})

    def test_multi_get_batches_and_defaults(self):
        client = HBaseClient()
        client.create_feature_store()
        for index in range(8):
            client.put(
                "titant_features", f"u{index}", BASIC_FEATURES_FAMILY, {"age": index}, version=1
            )
        keys = [f"u{index}" for index in range(8)] + ["ghost", "u0"]  # dup + miss
        rows = client.multi_get(
            "titant_features", keys, BASIC_FEATURES_FAMILY, default={"age": -1}
        )
        assert len(rows) == 9
        assert rows["u3"]["age"] == 3
        assert rows["ghost"] == {"age": -1}
        with pytest.raises(TableNotFoundError):
            client.multi_get("missing", keys, BASIC_FEATURES_FAMILY)

    def test_row_cache_hits_and_write_invalidation(self):
        client = HBaseClient(row_cache_ttl_s=60.0)
        client.create_feature_store()
        client.put("titant_features", "u1", BASIC_FEATURES_FAMILY, {"age": 30}, version=1)
        assert client.get("titant_features", "u1", BASIC_FEATURES_FAMILY)["age"] == 30
        reads_before = sum(
            stats["reads"] for stats in client.region_load_report().values()
        )
        assert client.get("titant_features", "u1", BASIC_FEATURES_FAMILY)["age"] == 30
        reads_after = sum(
            stats["reads"] for stats in client.region_load_report().values()
        )
        assert reads_after == reads_before  # served from cache
        assert client.row_cache_stats()["hits"] >= 1
        # A write invalidates the cached row, so the next read sees it.
        client.put("titant_features", "u1", BASIC_FEATURES_FAMILY, {"age": 31}, version=2)
        assert client.get("titant_features", "u1", BASIC_FEATURES_FAMILY)["age"] == 31

    def test_expired_rows_release_cache_capacity(self):
        """Regression: an expired row must not keep occupying max_rows.

        Before the fix, RowCache.get deleted the expired (column family,
        version) sub-entry but left the empty row entry behind, so dead rows
        counted against capacity and could evict live rows.
        """
        from repro.hbase.cache import RowCache

        cache = RowCache(ttl_seconds=30.0, max_rows=2)
        cache.put("t", "stale", "cf", None, {"v": 1}, now=0.0)
        cache.put("t", "live", "cf", None, {"v": 2}, now=5.0)
        # A hit moves 'stale' behind 'live' in the LRU order...
        assert cache.get("t", "stale", "cf", None, now=29.0) is not None
        # ...then it expires; the empty row entry must be dropped entirely.
        assert cache.get("t", "stale", "cf", None, now=31.0) is None
        assert len(cache) == 1
        assert cache.stats()["rows"] == 1.0
        # With capacity freed, inserting a new row must not evict the live one.
        cache.put("t", "new", "cf", None, {"v": 3}, now=31.0)
        assert cache.get("t", "live", "cf", None, now=33.0) is not None

    def test_cache_full_of_expired_rows_keeps_live_rows(self):
        from repro.hbase.cache import RowCache

        cache = RowCache(ttl_seconds=10.0, max_rows=4)
        for i in range(4):
            cache.put("t", f"stale{i}", "cf", None, {"v": i}, now=0.0)
        # Touch every expired row: each lookup must free its slot.
        for i in range(4):
            assert cache.get("t", f"stale{i}", "cf", None, now=20.0) is None
        assert len(cache) == 0
        for i in range(4):
            cache.put("t", f"live{i}", "cf", None, {"v": i}, now=20.0)
        for i in range(4):
            assert cache.get("t", f"live{i}", "cf", None, now=25.0) is not None

    def test_row_cache_disabled(self):
        client = HBaseClient(row_cache_ttl_s=0.0)
        client.create_feature_store()
        client.put("titant_features", "u1", BASIC_FEATURES_FAMILY, {"age": 30}, version=1)
        client.get("titant_features", "u1", BASIC_FEATURES_FAMILY)
        assert client.row_cache_stats() == {
            "rows": 0.0,
            "hits": 0.0,
            "misses": 0.0,
            "hit_rate": 0.0,
        }


class TestLatencyTracker:
    def test_report_percentiles(self):
        tracker = LatencyTracker(sla_budget_ms=10.0)
        for value in (1.0, 2.0, 3.0, 20.0):
            tracker.record(value)
        report = tracker.report()
        assert report.count == 4
        assert report.max_ms == 20.0
        assert report.sla_violations == 1
        assert not tracker.within_sla(quantile=0.99)

    def test_invalid_values_rejected(self):
        tracker = LatencyTracker()
        with pytest.raises(ServingError):
            tracker.record(-1.0)
        with pytest.raises(ServingError):
            LatencyTracker(sla_budget_ms=0.0)


@pytest.fixture()
def serving_stack(world, dataset, feature_matrices):
    """An HBase store + Model Server loaded with a trained basic-features GBDT."""
    train, _ = feature_matrices
    model = GradientBoostingClassifier(num_trees=20, seed=0).fit(train.values, train.labels)
    hbase = HBaseClient()
    hbase.create_feature_store()
    for profile in world.profiles:
        hbase.put(
            "titant_features",
            profile.user_id,
            BASIC_FEATURES_FAMILY,
            {
                "age": profile.age,
                "gender": profile.gender.value,
                "home_city": profile.home_city,
                "account_age_days": profile.account_age_days,
                "kyc_level": profile.kyc_level,
                "is_merchant": profile.is_merchant,
                "device_count": profile.device_count,
                "community": profile.community,
            },
            version=dataset.spec.test_day,
        )
    server = ModelServer(hbase, ModelServerConfig())
    server.load_model(model, version="test_v1", threshold=0.5)
    return hbase, server


class TestModelServer:
    def test_predict_without_model_raises(self):
        server = ModelServer(HBaseClient())
        server.hbase.create_feature_store()
        request = TransactionRequest(
            transaction_id="t1",
            payer_id="a",
            payee_id="b",
            amount=10.0,
            hour=12,
            day=0,
            channel=list(__import__("repro.datagen.schema", fromlist=["TransactionChannel"]).TransactionChannel)[0],
            trans_city="city_001",
            device_id="d",
            is_new_device=False,
            ip_risk_score=0.1,
        )
        with pytest.raises(ModelNotLoadedError):
            server.predict(request)

    def test_online_prediction_matches_offline_features(self, serving_stack, world, dataset):
        _, server = serving_stack
        from repro.features.basic import BasicFeatureExtractor

        extractor = BasicFeatureExtractor(world.profiles_by_id)
        txn = dataset.test_transactions[0]
        offline_vector = extractor.extract_one(txn)
        online_vector = server.plan_executor.assemble_single(
            TransactionRequest.from_transaction(txn).to_transaction()
        )
        assert np.allclose(offline_vector, online_vector)

    def test_predict_batch_matches_scalar_predictions(self, serving_stack, dataset):
        _, server = serving_stack
        requests = [
            TransactionRequest.from_transaction(txn)
            for txn in dataset.test_transactions[:32]
        ]
        scalar = [server.predict(request).fraud_probability for request in requests]
        batch = [r.fraud_probability for r in server.predict_batch(requests)]
        assert np.allclose(scalar, batch)

    def test_load_model_does_not_mutate_shared_config(self, serving_stack, feature_matrices):
        hbase, first = serving_stack
        train, _ = feature_matrices
        shared = ModelServerConfig(alert_threshold=0.5)
        a = ModelServer(hbase, shared)
        b = ModelServer(hbase, shared)
        model = GradientBoostingClassifier(num_trees=5, seed=3).fit(train.values, train.labels)
        a.load_model(model, version="va", threshold=0.9)
        b.load_model(model, version="vb", threshold=0.1)
        assert shared.alert_threshold == pytest.approx(0.5)
        assert a.alert_threshold == pytest.approx(0.9)
        assert b.alert_threshold == pytest.approx(0.1)

    def test_rejects_plan_and_specs_together(self, serving_stack, feature_matrices):
        hbase, _ = serving_stack
        train, _ = feature_matrices
        from repro.features.plan import FeaturePlan

        model = GradientBoostingClassifier(num_trees=5, seed=4).fit(train.values, train.labels)
        server = ModelServer(hbase)
        with pytest.raises(ServingError):
            server.load_model(
                model, version="v", plan=FeaturePlan(), embedding_specs=[("dw", 8)]
            )

    def test_latency_is_milliseconds_scale(self, serving_stack, dataset):
        _, server = serving_stack
        for txn in dataset.test_transactions[:30]:
            server.predict(TransactionRequest.from_transaction(txn))
        report = server.latency.report()
        assert report.count == 30
        assert report.p99_ms < 50.0  # the paper's "tens of milliseconds" budget

    def test_model_hot_reload_changes_version(self, serving_stack, feature_matrices):
        _, server = serving_stack
        train, _ = feature_matrices
        new_model = GradientBoostingClassifier(num_trees=5, seed=1).fit(train.values, train.labels)
        server.load_model(new_model, version="test_v2", threshold=0.7)
        assert server.model_version == "test_v2"
        assert server.alert_threshold == pytest.approx(0.7)

    def test_unfitted_model_rejected(self, serving_stack):
        _, server = serving_stack
        with pytest.raises(ServingError):
            server.load_model(GradientBoostingClassifier(), version="bad")


class TestAlipayServer:
    def test_interruption_flow_and_report(self, serving_stack, dataset):
        _, server = serving_stack
        alipay = AlipayServer(server)
        report = alipay.replay_transactions(dataset.test_transactions[:200])
        assert report.total == 200
        assert report.approved + report.interrupted == 200
        # Every interruption generated a user notification.
        assert len(alipay.notifications) == report.interrupted
        assert 0.0 <= report.alert_precision <= 1.0
        assert 0.0 <= report.alert_recall <= 1.0

    def test_round_robin_across_model_servers(self, serving_stack, feature_matrices, dataset):
        hbase, first = serving_stack
        train, _ = feature_matrices
        second = ModelServer(hbase, ModelServerConfig())
        second.load_model(
            GradientBoostingClassifier(num_trees=5, seed=9).fit(train.values, train.labels),
            version="replica",
        )
        alipay = AlipayServer([first, second])
        for txn in dataset.test_transactions[:10]:
            alipay.process(TransactionRequest.from_transaction(txn))
        assert second.requests_served == 5

    def test_latency_report_aggregates(self, serving_stack, dataset):
        _, server = serving_stack
        alipay = AlipayServer(server)
        alipay.replay_transactions(dataset.test_transactions[:20])
        summary = alipay.latency_report()
        assert summary["count"] >= 20.0
        assert summary["mean_ms"] > 0.0

    def test_fleet_p99_merges_raw_samples(self):
        # Two servers with very different loads: pooling the samples gives the
        # true fleet p99; max(per-server p99) would report ~10 ms instead.
        fast = LatencyTracker(sla_budget_ms=50.0)
        slow = LatencyTracker(sla_budget_ms=50.0)
        for _ in range(99):
            fast.record(1.0)
        slow.record(10.0)
        merged = LatencyTracker.merged_report([fast, slow])
        assert merged.count == 100
        assert merged.p99_ms < 10.0
        assert merged.p99_ms < max(fast.report().p99_ms, slow.report().p99_ms) + 1e-9

    def test_replay_batched_matches_scalar_outcomes(self, serving_stack, dataset):
        hbase, server = serving_stack
        transactions = dataset.test_transactions[:64]
        scalar = AlipayServer(server)
        scalar_report = scalar.replay_transactions(transactions)
        batched = AlipayServer(server)
        batched_report = batched.replay_transactions(transactions, batch_size=16)
        assert batched_report.total == scalar_report.total == 64
        assert batched_report.interrupted == scalar_report.interrupted
        assert batched_report.true_alerts == scalar_report.true_alerts
        assert [s.response.fraud_probability for s in batched.served] == pytest.approx(
            [s.response.fraud_probability for s in scalar.served]
        )

    def test_process_batch_spreads_over_fleet(self, serving_stack, feature_matrices, dataset):
        hbase, first = serving_stack
        train, _ = feature_matrices
        second = ModelServer(hbase, ModelServerConfig())
        second.load_model(
            GradientBoostingClassifier(num_trees=5, seed=9).fit(train.values, train.labels),
            version="replica",
        )
        alipay = AlipayServer([first, second])
        first_before = first.requests_served
        requests = [
            TransactionRequest.from_transaction(txn)
            for txn in dataset.test_transactions[:40]
        ]
        served = alipay.process_batch(requests)
        assert len(served) == 40
        assert [s.request.transaction_id for s in served] == [
            r.transaction_id for r in requests
        ]
        assert first.requests_served - first_before == 20
        assert second.requests_served == 20


class TestEmbeddingWriteThroughInvalidation:
    """PR 10: refresh writes must invalidate exactly the embedding CF, fleet-wide."""

    def _storage_reads(self, client: HBaseClient) -> int:
        return sum(stats["reads"] for stats in client.region_load_report().values())

    def test_embedding_put_invalidates_only_embedding_family_on_every_connection(self):
        from repro.hbase.client import AGGREGATES_FAMILY

        parent = HBaseClient(row_cache_ttl_s=60.0)
        parent.create_feature_store()
        families = {
            BASIC_FEATURES_FAMILY: {"age": 30},
            AGGREGATES_FAMILY: {"out_count_7d": 2.0},
            EMBEDDINGS_FAMILY: {"s2v": (1.0, 2.0, 3.0)},
        }
        for family, values in families.items():
            parent.put("titant_features", "u1", family, values, version=1)
        # A three-handle fleet: the parent plus two Model-Server-style
        # connections, each with a private row cache over shared storage.
        fleet = [parent, parent.connection(), parent.connection()]
        for handle in fleet:
            for family in families:
                handle.get("titant_features", "u1", family)

        # Fully warm: every (handle, family) read is now served from cache.
        before = self._storage_reads(parent)
        for handle in fleet:
            for family in families:
                handle.get("titant_features", "u1", family)
        assert self._storage_reads(parent) == before

        # An embedding write-through — the same put the refresh pass issues.
        parent.put(
            "titant_features", "u1", EMBEDDINGS_FAMILY, {"s2v": (9.0, 9.0, 9.0)}, version=2
        )
        for handle in fleet:
            # The embedding row was invalidated in this handle's cache: the
            # read goes back to storage and sees the refreshed vector.
            reads = self._storage_reads(parent)
            row = handle.get("titant_features", "u1", EMBEDDINGS_FAMILY)
            assert tuple(row["s2v"]) == (9.0, 9.0, 9.0)
            assert self._storage_reads(parent) == reads + 1
            # Profile and aggregate rows were NOT invalidated: still cached.
            reads = self._storage_reads(parent)
            assert handle.get("titant_features", "u1", BASIC_FEATURES_FAMILY)["age"] == 30
            assert handle.get("titant_features", "u1", AGGREGATES_FAMILY)["out_count_7d"] == 2.0
            assert self._storage_reads(parent) == reads


class TestMissingEmbeddingDefault:
    """PR 10 satellite: missing embedding rows get an explicit, counted default."""

    @pytest.fixture()
    def embedding_server(self, serving_stack):
        from repro.features.plan import FeaturePlan

        hbase, _ = serving_stack
        plan = FeaturePlan.from_specs([("s2v", 4)], embedding_side="both")
        rng = np.random.default_rng(0)
        model = GradientBoostingClassifier(num_trees=5, seed=0).fit(
            rng.normal(size=(64, plan.num_features)),
            (rng.random(64) < 0.5).astype(np.float64),
        )
        server = ModelServer(hbase, ModelServerConfig())
        server.load_model(model, version="s2v_v1", threshold=0.5, plan=plan)
        return hbase, server, model, plan

    def test_missing_row_counted_stored_zero_row_not(self, embedding_server, dataset):
        hbase, server, _, _ = embedding_server
        txn = dataset.test_transactions[0]
        # The payer has an explicitly published all-zero embedding; the payee
        # has no embedding row at all.  Both score as the zero vector, but
        # only the payee's read is a *missing* embedding.
        hbase.put(
            "titant_features",
            txn.payer_id,
            EMBEDDINGS_FAMILY,
            {"s2v": (0.0, 0.0, 0.0, 0.0)},
            version=1,
        )
        assert server.missing_embeddings == 0
        server.predict(TransactionRequest.from_transaction(txn))
        assert server.missing_embeddings == 1

    def test_counter_accumulates_across_model_rotations(self, embedding_server, dataset):
        _, server, model, plan = embedding_server
        txn = dataset.test_transactions[1]
        server.predict(TransactionRequest.from_transaction(txn))
        first = server.missing_embeddings
        assert first == 2  # both sides unpublished
        server.load_model(model, version="s2v_v2", threshold=0.5, plan=plan)
        server.predict(TransactionRequest.from_transaction(txn))
        assert server.missing_embeddings == first + 2

    def test_serving_report_carries_missing_embeddings(self, embedding_server, dataset):
        _, server, _, _ = embedding_server
        alipay = AlipayServer(server)
        report = alipay.replay_transactions(dataset.test_transactions[:25])
        assert report.total == 25
        assert report.missing_embeddings == server.missing_embeddings
        assert report.missing_embeddings > 0
