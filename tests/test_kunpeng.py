"""Tests of the KunPeng parameter-server substrate and distributed training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmbeddingError, ParameterServerError, WorkerFailureError
from repro.graph.random_walk import RandomWalkConfig, RandomWalker
from repro.kunpeng import (
    ClusterConfig,
    FailureInjector,
    KunPengCluster,
    ParameterServerNode,
    WorkerNode,
    estimate_deepwalk_time,
    estimate_gbdt_time,
)
from repro.kunpeng.cost_model import (
    ClusterCostModel,
    deepwalk_round_volume,
    gbdt_round_volume,
    scalability_curve,
)
from repro.models.distributed import DistributedGBDT, DistributedLogisticRegression
from repro.models.gbdt import GradientBoostingClassifier
from repro.nrl.distributed import DistributedDeepWalk, DistributedDeepWalkConfig
from repro.nrl.embeddings import top1_neighbor_recall
from repro.nrl.word2vec import SkipGramConfig, SkipGramTrainer


class TestServerNode:
    def test_pull_push_round_trip(self):
        server = ParameterServerNode(0)
        server.host_shard("w", 0, 4, np.zeros((4, 2)))
        server.push("w", {1: np.array([1.0, 2.0])}, learning_rate=0.5)
        pulled = server.pull("w", [1])
        assert pulled[1].tolist() == [-0.5, -1.0]

    def test_out_of_range_row_rejected(self):
        server = ParameterServerNode(0)
        server.host_shard("w", 0, 4, np.zeros((4, 2)))
        with pytest.raises(ParameterServerError):
            server.pull("w", [10])

    def test_model_average(self):
        server = ParameterServerNode(0)
        server.host_shard("w", 0, 2, np.zeros((2, 2)))
        server.push_average("w", [np.ones((2, 2)), 3 * np.ones((2, 2))])
        assert np.allclose(server.pull_all("w"), 2.0)


class TestWorkerNode:
    def test_failure_and_restart(self):
        worker = WorkerNode(0)
        worker.assign_partition([1, 2, 3])
        worker.fail()
        with pytest.raises(WorkerFailureError):
            worker.run(lambda w: None)
        worker.restart()
        assert worker.run(lambda w: len(w.partition)) == 3
        assert worker.stats.failures == 1 and worker.stats.restarts == 1

    def test_compute_units_accumulate(self):
        worker = WorkerNode(1)
        worker.assign_partition(list(range(5)))
        worker.run(lambda w: None)
        worker.run(lambda w: None, compute_units=10.0)
        assert worker.stats.compute_units == pytest.approx(15.0)


class TestCluster:
    def test_half_servers_half_workers(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=10))
        assert len(cluster.servers) == 5
        assert len(cluster.workers) == 5

    def test_parameter_partitioning_and_reassembly(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=6))
        matrix = np.arange(20.0).reshape(10, 2)
        cluster.create_parameter("emb", matrix)
        assert np.allclose(cluster.pull_matrix("emb"), matrix)

    def test_push_routes_to_owning_server(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=4))
        cluster.create_parameter("emb", np.zeros((8, 2)))
        cluster.push_gradients("emb", {0: np.array([1.0, 1.0]), 7: np.array([2.0, 2.0])})
        updated = cluster.pull_matrix("emb")
        assert updated[0].tolist() == [-1.0, -1.0]
        assert updated[7].tolist() == [-2.0, -2.0]

    def test_scatter_data_round_robin(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=6))
        cluster.scatter_data(list(range(10)))
        sizes = [len(w.partition) for w in cluster.workers]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_duplicate_parameter_rejected(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=4))
        cluster.create_parameter("w", np.zeros((4, 2)))
        with pytest.raises(ParameterServerError):
            cluster.create_parameter("w", np.zeros((4, 2)))

    def test_pull_row_block_routes_across_shards(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=6))  # 3 servers
        matrix = np.arange(24.0).reshape(12, 2)
        cluster.create_parameter("emb", matrix)
        rows = np.array([11, 0, 5, 0])  # out of order, duplicated, all shards
        block = cluster.pull_row_block("emb", rows)
        assert np.allclose(block, matrix[rows])

    def test_push_row_block_applies_row_sparse_update(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=6))
        cluster.create_parameter("emb", np.zeros((12, 2)))
        rows = np.array([0, 6, 11])
        grads = np.ones((3, 2))
        cluster.push_row_block("emb", rows, grads, learning_rate=0.5)
        updated = cluster.pull_matrix("emb")
        assert np.allclose(updated[rows], -0.5)
        untouched = np.setdiff1d(np.arange(12), rows)
        assert np.allclose(updated[untouched], 0.0)

    def test_unknown_rows_rejected_by_block_apis(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=4))
        cluster.create_parameter("emb", np.zeros((8, 2)))
        with pytest.raises(ParameterServerError):
            cluster.pull_row_block("emb", np.array([99]))
        with pytest.raises(ParameterServerError):
            cluster.push_row_block("emb", np.array([99]), np.ones((1, 2)))

    def test_per_round_accounting_excludes_out_of_round_traffic(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=4))
        cluster.create_parameter("emb", np.zeros((8, 2)))
        cluster.begin_round()
        cluster.pull_row_block("emb", np.array([0, 1, 2]))
        cluster.push_row_block("emb", np.array([0, 1, 2]), np.ones((3, 2)))
        cluster.end_round()
        cluster.pull_matrix("emb")  # checkpoint download, outside any round
        assert cluster.values_per_round() == [6]
        summary = cluster.workload_summary()
        assert summary["rounds_recorded"] == 1.0
        assert summary["values_per_round"] == 6.0
        assert summary["values_transferred"] == 14.0


class TestFailover:
    def test_injector_respects_probability_zero(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=6))
        injector = FailureInjector(cluster, failure_probability=0.0, rng=0)
        assert injector.maybe_fail(0) == []

    def test_heal_restarts_all_workers(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=6))
        injector = FailureInjector(cluster, failure_probability=1.0, rng=0)
        crashed = injector.maybe_fail(0)
        assert crashed, "expected at least one crash at probability 1"
        assert len(cluster.alive_workers()) >= 1  # never kills the last worker
        injector.heal()
        assert len(cluster.alive_workers()) == len(cluster.workers)


class TestCostModel:
    def test_deepwalk_time_decreases_with_machines(self):
        times = [estimate_deepwalk_time(m).total_minutes for m in (4, 10, 20, 40)]
        assert times == sorted(times, reverse=True)

    def test_gbdt_time_flattens_beyond_20_machines(self):
        t4 = estimate_gbdt_time(4).total_seconds
        t20 = estimate_gbdt_time(20).total_seconds
        t40 = estimate_gbdt_time(40).total_seconds
        assert t20 < t4
        # From 20 to 40 machines the improvement (if any) is marginal.
        assert t40 > 0.8 * t20

    def test_scalability_curve_columns(self):
        rows = scalability_curve()
        assert {"num_machines", "deepwalk_minutes", "gbdt_seconds"} <= set(rows[0])
        assert [r["num_machines"] for r in rows] == [4.0, 10.0, 20.0, 40.0]

    def test_invalid_cost_model_rejected(self):
        with pytest.raises(Exception):
            ClusterCostModel(compute_seconds_per_unit=-1.0).validate()

    def test_round_volume_dense_vs_sparse(self):
        dense = deepwalk_round_volume(10_000, 4, mode="dense")
        sparse = deepwalk_round_volume(10_000, 4, mode="sparse", batch_pairs=256, negatives=5)
        assert dense == 4.0 * 10_000 * 4
        assert sparse == 2.0 * (256 + 256 * 6) * 4
        assert sparse < dense
        with pytest.raises(Exception):
            deepwalk_round_volume(10, 2, mode="bogus")

    def test_sparse_mode_estimate_cuts_communication(self):
        dense = estimate_deepwalk_time(20)
        sparse = estimate_deepwalk_time(20, mode="sparse")
        assert sparse.communication_seconds < dense.communication_seconds
        assert sparse.compute_seconds == pytest.approx(dense.compute_seconds)
        assert sparse.total_seconds < dense.total_seconds


class TestDistributedTraining:
    def test_distributed_deepwalk_produces_embeddings(self, network):
        config = DistributedDeepWalkConfig(
            cluster=ClusterConfig(num_machines=4),
            walk=RandomWalkConfig(walk_length=10, num_walks_per_node=2),
            skipgram=SkipGramConfig(dimension=8, window=3, epochs=1, batch_size=512),
            rounds_per_epoch=2,
            seed=0,
        )
        model = DistributedDeepWalk(config).fit(network)
        embeddings = model.embeddings()
        assert len(embeddings) == network.num_nodes
        summary = model.workload_summary()
        assert summary["worker_compute_units"] > 0
        assert summary["values_transferred"] > 0
        assert model.estimate_time().total_seconds > 0

    def test_distributed_deepwalk_survives_worker_failures(self, network):
        config = DistributedDeepWalkConfig(
            cluster=ClusterConfig(num_machines=6),
            walk=RandomWalkConfig(walk_length=8, num_walks_per_node=2),
            skipgram=SkipGramConfig(dimension=4, window=2, epochs=1, batch_size=256),
            rounds_per_epoch=3,
            failure_probability=0.5,
            seed=1,
        )
        model = DistributedDeepWalk(config).fit(network)
        assert model.failure_injector.total_failures > 0
        assert len(model.embeddings()) == network.num_nodes

    def test_dense_mode_still_available(self, network):
        config = DistributedDeepWalkConfig(
            cluster=ClusterConfig(num_machines=4),
            walk=RandomWalkConfig(walk_length=8, num_walks_per_node=2),
            skipgram=SkipGramConfig(dimension=8, window=3, epochs=1, batch_size=512),
            mode="dense",
            rounds_per_epoch=2,
            seed=0,
        )
        model = DistributedDeepWalk(config).fit(network)
        assert len(model.embeddings()) == network.num_nodes
        assert model.loss_history and np.isfinite(model.loss_history).all()

    def test_invalid_mode_rejected(self):
        with pytest.raises(EmbeddingError):
            DistributedDeepWalkConfig(mode="bogus").validate()

    def test_sparse_transfers_fewer_values_per_round_than_dense(self, network):
        summaries = {}
        for mode in ("dense", "sparse"):
            config = DistributedDeepWalkConfig(
                cluster=ClusterConfig(num_machines=4),
                walk=RandomWalkConfig(walk_length=10, num_walks_per_node=2),
                skipgram=SkipGramConfig(
                    dimension=8, window=3, epochs=1, batch_size=128, negatives=4
                ),
                mode=mode,
                rounds_per_epoch=3,
                seed=7,
            )
            model = DistributedDeepWalk(config).fit(network)
            summaries[mode] = model.workload_summary()
            assert summaries[mode]["rounds_recorded"] == model.rounds_completed
        assert (
            summaries["sparse"]["values_per_round"]
            < summaries["dense"]["values_per_round"] / 2
        )
        # and the analytic round-volume model agrees on the direction
        vocab_rows = int(network.num_nodes)
        assert deepwalk_round_volume(
            vocab_rows, 2, mode="sparse", batch_pairs=128, negatives=4
        ) < deepwalk_round_volume(vocab_rows, 2, mode="dense")

    def test_estimate_time_reflects_recorded_round_traffic(self, network):
        config = DistributedDeepWalkConfig(
            cluster=ClusterConfig(num_machines=4),
            walk=RandomWalkConfig(walk_length=8, num_walks_per_node=2),
            skipgram=SkipGramConfig(dimension=8, window=3, epochs=1, batch_size=64),
            rounds_per_epoch=2,
            seed=3,
        )
        model = DistributedDeepWalk(config).fit(network)
        summary = model.workload_summary()
        cost_model = ClusterCostModel()
        estimate = model.estimate_time(cost_model)
        expected = cost_model.estimate(
            total_compute_units=summary["worker_compute_units"],
            comm_values_per_round=summary["values_per_round"],
            num_rounds=model.rounds_completed,
            cluster=config.cluster,
        )
        assert estimate.communication_seconds == pytest.approx(expected.communication_seconds)
        # the naive total/rounds quotient would include the checkpoint download
        naive = summary["values_transferred"] / model.rounds_completed
        assert summary["values_per_round"] < naive

    def test_distributed_vocabulary_honors_min_count(self, network):
        """Regression: the distributed path must prune exactly like the trainer."""
        skipgram = SkipGramConfig(
            dimension=8, window=3, epochs=1, batch_size=128, min_count=3
        )
        config = DistributedDeepWalkConfig(
            cluster=ClusterConfig(num_machines=4),
            walk=RandomWalkConfig(walk_length=8, num_walks_per_node=2),
            skipgram=skipgram,
            rounds_per_epoch=1,
            seed=5,
        )
        model = DistributedDeepWalk(config).fit(network)
        # replay the identical walk stream and push it through the
        # single-machine path
        walker = RandomWalker(network, config.walk, rng=np.random.default_rng(model.walk_seed))
        corpus = walker.generate()
        trainer = SkipGramTrainer(skipgram)
        trainer.fit(corpus)
        assert trainer.vocabulary is not None
        distributed_counts = dict(
            zip(model.vocabulary_.tokens(), model.vocabulary_.counts().tolist())
        )
        trainer_counts = dict(
            zip(trainer.vocabulary.tokens(), trainer.vocabulary.counts().tolist())
        )
        assert distributed_counts == trainer_counts
        # min_count must actually have pruned something for this to be a test
        assert len(model.vocabulary_) < network.num_nodes

    def test_sparse_recall_matches_dense_on_fraud_network(self, world, network):
        """Sparse pull/push must not cost embedding quality vs model averaging."""
        communities = {
            node: world.profiles_by_id[node].community
            for node in network.nodes()
            if node in world.profiles_by_id
        }
        recalls = {}
        for mode in ("dense", "sparse"):
            config = DistributedDeepWalkConfig(
                cluster=ClusterConfig(num_machines=4),
                walk=RandomWalkConfig(walk_length=20, num_walks_per_node=3, batch_size=64),
                skipgram=SkipGramConfig(
                    dimension=16, window=4, epochs=8, batch_size=1024, negatives=4
                ),
                mode=mode,
                rounds_per_epoch=100,
                seed=2,
            )
            model = DistributedDeepWalk(config).fit(network)
            assert np.isfinite(model.loss_history).all()
            recalls[mode] = top1_neighbor_recall(model.embeddings(), communities)
        # both modes must capture community structure far beyond the 1/8 chance
        # level of the fixture's 8 communities
        assert min(recalls.values()) > 0.7
        assert recalls["sparse"] >= recalls["dense"] - 0.05

    def test_distributed_lr_matches_single_machine_quality(self, small_classification_data):
        features, labels = small_classification_data
        model = DistributedLogisticRegression(
            cluster=ClusterConfig(num_machines=4), iterations=80, seed=0
        ).fit(features, labels)
        accuracy = (model.predict(features) == labels).mean()
        assert accuracy > 0.8
        assert model.stats.rounds == 80

    def test_distributed_gbdt_learns(self, small_classification_data):
        features, labels = small_classification_data
        model = DistributedGBDT(
            cluster=ClusterConfig(num_machines=4), num_trees=20, seed=0
        ).fit(features, labels)
        accuracy = (model.predict(features) == labels).mean()
        assert accuracy > 0.8
        assert model.estimate_time().total_seconds > 0

    def test_lr_estimate_time_uses_round_traffic(self, small_classification_data):
        features, labels = small_classification_data
        model = DistributedLogisticRegression(
            cluster=ClusterConfig(num_machines=4), iterations=25, seed=0
        ).fit(features, labels)
        summary = model.cluster.workload_summary()
        assert summary["rounds_recorded"] == model.stats.rounds
        cost_model = ClusterCostModel()
        estimate = model.estimate_time(cost_model)
        expected = cost_model.estimate(
            total_compute_units=summary["worker_compute_units"],
            comm_values_per_round=summary["values_per_round"],
            num_rounds=model.stats.rounds,
            cluster=model.cluster_config,
        )
        assert estimate.communication_seconds == pytest.approx(expected.communication_seconds)
        # The final weight download happens outside any round window, so the
        # old lifetime-total / rounds quotient overstates the per-round volume.
        naive = summary["values_transferred"] / model.stats.rounds
        assert summary["values_per_round"] < naive


class TestDistributedGBDTHistogram:
    """The PR 3 tentpole: PS-side histogram aggregation and its guarantees."""

    def test_hist_mode_matches_single_machine_quality(self, small_classification_data):
        features, labels = small_classification_data
        distributed = DistributedGBDT(
            cluster=ClusterConfig(num_machines=4), num_trees=20, seed=0
        ).fit(features, labels)
        single = GradientBoostingClassifier(
            num_trees=20, tree_method="hist", seed=0
        ).fit(features, labels)
        assert np.allclose(
            distributed.predict_proba(features), single.predict_proba(features), atol=1e-8
        )

    def test_exact_mode_same_seed_matches_single_machine_exactly(
        self, small_classification_data
    ):
        """Regression for the hyperparameter-parity fix: with the same seed
        and hyperparameters, the exact-mode distributed driver must grow the
        same trees as the single-machine trainer (it used to hardcode
        ``min_samples_leaf=5`` and drop ``reg_lambda``)."""
        features, labels = small_classification_data
        kwargs = dict(
            num_trees=12, min_samples_leaf=9, reg_lambda=2.5, seed=4, tree_method="exact"
        )
        distributed = DistributedGBDT(
            cluster=ClusterConfig(num_machines=4), **kwargs
        ).fit(features, labels)
        single = GradientBoostingClassifier(**kwargs).fit(features, labels)
        assert np.array_equal(
            distributed.predict_proba(features), single.predict_proba(features)
        )
        # and the knobs actually reach the fitted weak learners
        for tree in distributed._trees:
            assert tree.min_samples_leaf == 9
            assert tree.reg_lambda == 2.5

    def test_constructor_knobs_match_single_machine(self):
        distributed = DistributedGBDT(
            num_trees=5, min_samples_leaf=7, reg_lambda=3.0, objective="squared",
            class_weight=None, num_bins=32,
        )
        single = GradientBoostingClassifier(
            num_trees=5, min_samples_leaf=7, reg_lambda=3.0, objective="squared",
            class_weight=None, num_bins=32,
        )
        shared = (
            "num_trees", "max_depth", "learning_rate", "subsample_rows",
            "subsample_features", "min_samples_leaf", "reg_lambda", "objective",
            "class_weight", "tree_method", "num_bins",
        )
        single_params = single.get_params()
        distributed_params = distributed.get_params()
        for key in shared:
            assert distributed_params[key] == single_params[key]

    def test_hist_round_volume_independent_of_row_count(self):
        """The tentpole claim: per-round traffic scales with bins x features,
        not with rows.  Tripling the dataset leaves the histogram volume
        (essentially) unchanged while exact-mode traffic triples."""
        rng = np.random.default_rng(5)
        volumes = {"hist": {}, "exact": {}}
        for num_rows in (1500, 4500):
            features = rng.normal(size=(num_rows, 10))
            labels = (features[:, 0] + features[:, 1] > 0).astype(float)
            for method in ("hist", "exact"):
                model = DistributedGBDT(
                    cluster=ClusterConfig(num_machines=4),
                    num_trees=5,
                    tree_method=method,
                    num_bins=16,
                    seed=5,
                ).fit(features, labels)
                volumes[method][num_rows] = model.cluster.workload_summary()[
                    "values_per_round"
                ]
        assert volumes["exact"][4500] > 2.5 * volumes["exact"][1500]
        assert volumes["hist"][4500] < 1.3 * volumes["hist"][1500]
        # and the measured volume stays within the analytic bins x features bound
        features_per_tree = max(1, int(round(0.4 * 10)))
        bound = gbdt_round_volume(
            4500, features_per_tree, ClusterConfig(num_machines=4).num_workers,
            mode="hist", num_bins=16, max_depth=3,
        )
        assert volumes["hist"][4500] <= bound

    def test_hist_round_volume_scales_with_bins(self):
        rng = np.random.default_rng(6)
        features = rng.normal(size=(3000, 8))
        labels = (features[:, 0] > 0).astype(float)
        volumes = {}
        for num_bins in (8, 32):
            model = DistributedGBDT(
                cluster=ClusterConfig(num_machines=4),
                num_trees=4,
                num_bins=num_bins,
                seed=6,
            ).fit(features, labels)
            volumes[num_bins] = model.cluster.workload_summary()["values_per_round"]
        assert volumes[32] > 2.0 * volumes[8]

    def test_failure_recovery_is_exact(self, small_classification_data):
        """Regression for the fabricated-statistics bug: rows owned by a dead
        worker used to keep gradient 0 / hessian 1 for the round.  The driver
        now recomputes them, so an exact-mode run under heavy failure
        injection produces bit-identical trees to a failure-free run."""
        features, labels = small_classification_data
        kwargs = dict(
            cluster=ClusterConfig(num_machines=6), num_trees=12, tree_method="exact"
        )
        clean = DistributedGBDT(seed=2, **kwargs).fit(features, labels)
        faulty = DistributedGBDT(seed=2, failure_probability=0.4, **kwargs).fit(
            features, labels
        )
        assert faulty.stats.worker_failures > 0
        assert faulty.stats.dead_partition_recoveries > 0
        assert faulty.stats.driver_recovered_rows > 0
        assert np.array_equal(
            clean.predict_proba(features), faulty.predict_proba(features)
        )

    def test_hist_mode_survives_failures(self, small_classification_data):
        features, labels = small_classification_data
        model = DistributedGBDT(
            cluster=ClusterConfig(num_machines=6),
            num_trees=15,
            failure_probability=0.3,
            seed=3,
        ).fit(features, labels)
        assert model.stats.worker_failures > 0
        assert model.stats.dead_partition_recoveries > 0
        assert (model.predict(features) == labels).mean() > 0.8
        stats = model.stats.as_dict()
        assert stats["driver_recovered_rows"] > 0

    def test_gbdt_round_volume_model(self):
        assert gbdt_round_volume(10_000, 20, 4, mode="exact") == 20_000.0
        hist_small = gbdt_round_volume(10_000, 20, 4, mode="hist", num_bins=32)
        hist_same = gbdt_round_volume(10_000_000, 20, 4, mode="hist", num_bins=32)
        assert hist_small == hist_same  # row-count independent
        assert gbdt_round_volume(1, 40, 4, mode="hist") == 2 * gbdt_round_volume(
            1, 20, 4, mode="hist"
        )
        with pytest.raises(Exception):
            gbdt_round_volume(10, 2, 2, mode="bogus")
        exact = estimate_gbdt_time(20)
        hist = estimate_gbdt_time(20, mode="hist")
        assert hist.communication_seconds < exact.communication_seconds
        assert hist.compute_seconds == pytest.approx(exact.compute_seconds)
