"""Tests of the KunPeng parameter-server substrate and distributed training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ParameterServerError, WorkerFailureError
from repro.graph.random_walk import RandomWalkConfig
from repro.kunpeng import (
    ClusterConfig,
    FailureInjector,
    KunPengCluster,
    ParameterServerNode,
    WorkerNode,
    estimate_deepwalk_time,
    estimate_gbdt_time,
)
from repro.kunpeng.cost_model import ClusterCostModel, scalability_curve
from repro.models.distributed import DistributedGBDT, DistributedLogisticRegression
from repro.nrl.distributed import DistributedDeepWalk, DistributedDeepWalkConfig
from repro.nrl.word2vec import SkipGramConfig


class TestServerNode:
    def test_pull_push_round_trip(self):
        server = ParameterServerNode(0)
        server.host_shard("w", 0, 4, np.zeros((4, 2)))
        server.push("w", {1: np.array([1.0, 2.0])}, learning_rate=0.5)
        pulled = server.pull("w", [1])
        assert pulled[1].tolist() == [-0.5, -1.0]

    def test_out_of_range_row_rejected(self):
        server = ParameterServerNode(0)
        server.host_shard("w", 0, 4, np.zeros((4, 2)))
        with pytest.raises(ParameterServerError):
            server.pull("w", [10])

    def test_model_average(self):
        server = ParameterServerNode(0)
        server.host_shard("w", 0, 2, np.zeros((2, 2)))
        server.push_average("w", [np.ones((2, 2)), 3 * np.ones((2, 2))])
        assert np.allclose(server.pull_all("w"), 2.0)


class TestWorkerNode:
    def test_failure_and_restart(self):
        worker = WorkerNode(0)
        worker.assign_partition([1, 2, 3])
        worker.fail()
        with pytest.raises(WorkerFailureError):
            worker.run(lambda w: None)
        worker.restart()
        assert worker.run(lambda w: len(w.partition)) == 3
        assert worker.stats.failures == 1 and worker.stats.restarts == 1

    def test_compute_units_accumulate(self):
        worker = WorkerNode(1)
        worker.assign_partition(list(range(5)))
        worker.run(lambda w: None)
        worker.run(lambda w: None, compute_units=10.0)
        assert worker.stats.compute_units == pytest.approx(15.0)


class TestCluster:
    def test_half_servers_half_workers(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=10))
        assert len(cluster.servers) == 5
        assert len(cluster.workers) == 5

    def test_parameter_partitioning_and_reassembly(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=6))
        matrix = np.arange(20.0).reshape(10, 2)
        cluster.create_parameter("emb", matrix)
        assert np.allclose(cluster.pull_matrix("emb"), matrix)

    def test_push_routes_to_owning_server(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=4))
        cluster.create_parameter("emb", np.zeros((8, 2)))
        cluster.push_gradients("emb", {0: np.array([1.0, 1.0]), 7: np.array([2.0, 2.0])})
        updated = cluster.pull_matrix("emb")
        assert updated[0].tolist() == [-1.0, -1.0]
        assert updated[7].tolist() == [-2.0, -2.0]

    def test_scatter_data_round_robin(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=6))
        cluster.scatter_data(list(range(10)))
        sizes = [len(w.partition) for w in cluster.workers]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_duplicate_parameter_rejected(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=4))
        cluster.create_parameter("w", np.zeros((4, 2)))
        with pytest.raises(ParameterServerError):
            cluster.create_parameter("w", np.zeros((4, 2)))


class TestFailover:
    def test_injector_respects_probability_zero(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=6))
        injector = FailureInjector(cluster, failure_probability=0.0, rng=0)
        assert injector.maybe_fail(0) == []

    def test_heal_restarts_all_workers(self):
        cluster = KunPengCluster(ClusterConfig(num_machines=6))
        injector = FailureInjector(cluster, failure_probability=1.0, rng=0)
        crashed = injector.maybe_fail(0)
        assert crashed, "expected at least one crash at probability 1"
        assert len(cluster.alive_workers()) >= 1  # never kills the last worker
        injector.heal()
        assert len(cluster.alive_workers()) == len(cluster.workers)


class TestCostModel:
    def test_deepwalk_time_decreases_with_machines(self):
        times = [estimate_deepwalk_time(m).total_minutes for m in (4, 10, 20, 40)]
        assert times == sorted(times, reverse=True)

    def test_gbdt_time_flattens_beyond_20_machines(self):
        t4 = estimate_gbdt_time(4).total_seconds
        t20 = estimate_gbdt_time(20).total_seconds
        t40 = estimate_gbdt_time(40).total_seconds
        assert t20 < t4
        # From 20 to 40 machines the improvement (if any) is marginal.
        assert t40 > 0.8 * t20

    def test_scalability_curve_columns(self):
        rows = scalability_curve()
        assert {"num_machines", "deepwalk_minutes", "gbdt_seconds"} <= set(rows[0])
        assert [r["num_machines"] for r in rows] == [4.0, 10.0, 20.0, 40.0]

    def test_invalid_cost_model_rejected(self):
        with pytest.raises(Exception):
            ClusterCostModel(compute_seconds_per_unit=-1.0).validate()


class TestDistributedTraining:
    def test_distributed_deepwalk_produces_embeddings(self, network):
        config = DistributedDeepWalkConfig(
            cluster=ClusterConfig(num_machines=4),
            walk=RandomWalkConfig(walk_length=10, num_walks_per_node=2),
            skipgram=SkipGramConfig(dimension=8, window=3, epochs=1, batch_size=512),
            rounds_per_epoch=2,
            seed=0,
        )
        model = DistributedDeepWalk(config).fit(network)
        embeddings = model.embeddings()
        assert len(embeddings) == network.num_nodes
        summary = model.workload_summary()
        assert summary["worker_compute_units"] > 0
        assert summary["values_transferred"] > 0
        assert model.estimate_time().total_seconds > 0

    def test_distributed_deepwalk_survives_worker_failures(self, network):
        config = DistributedDeepWalkConfig(
            cluster=ClusterConfig(num_machines=6),
            walk=RandomWalkConfig(walk_length=8, num_walks_per_node=2),
            skipgram=SkipGramConfig(dimension=4, window=2, epochs=1, batch_size=256),
            rounds_per_epoch=3,
            failure_probability=0.5,
            seed=1,
        )
        model = DistributedDeepWalk(config).fit(network)
        assert model.failure_injector.total_failures > 0
        assert len(model.embeddings()) == network.num_nodes

    def test_distributed_lr_matches_single_machine_quality(self, small_classification_data):
        features, labels = small_classification_data
        model = DistributedLogisticRegression(
            cluster=ClusterConfig(num_machines=4), iterations=80, seed=0
        ).fit(features, labels)
        accuracy = (model.predict(features) == labels).mean()
        assert accuracy > 0.8
        assert model.stats.rounds == 80

    def test_distributed_gbdt_learns(self, small_classification_data):
        features, labels = small_classification_data
        model = DistributedGBDT(
            cluster=ClusterConfig(num_machines=4), num_trees=20, seed=0
        ).fit(features, labels)
        accuracy = (model.predict(features) == labels).mean()
        assert accuracy > 0.8
        assert model.estimate_time().total_seconds > 0
