"""Tests of the MaxCompute substrate: tables, SQL, MapReduce, scheduling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    JobError,
    ResourceExhaustedError,
    SchemaError,
    SQLParseError,
    SQLPlanError,
    TableAlreadyExistsError,
    TableNotFoundError,
)
from repro.maxcompute import (
    Column,
    ColumnType,
    FuxiScheduler,
    InstanceStatus,
    MapReduceJob,
    MaxComputeClient,
    OpenTableService,
    PanguStorage,
    Schema,
    Table,
    TableCatalog,
    run_mapreduce,
)
from repro.maxcompute.mapreduce import daily_fraud_rate_job, transaction_edge_job
from repro.maxcompute.sql import SQLExecutor, parse_sql
from repro.maxcompute.table import table_from_records


@pytest.fixture()
def client(world):
    """A MaxCompute client loaded with a sample of the world's transactions."""
    client = MaxComputeClient()
    client.load_records("transactions", [t.to_row() for t in world.transactions[:3000]])
    return client


class TestTables:
    def test_schema_inference_and_coercion(self):
        rows = [{"name": "u1", "amount": 10.5, "count": 3, "flag": True}]
        table = table_from_records("t", rows)
        assert table.schema.column("amount").type is ColumnType.DOUBLE
        assert table.schema.column("count").type is ColumnType.BIGINT
        assert table.schema.column("flag").type is ColumnType.BOOLEAN
        table.append({"name": 5, "amount": "2.5", "count": "7", "flag": "false"})
        assert table.row(1) == {"name": "5", "amount": 2.5, "count": 7, "flag": False}

    def test_unknown_column_rejected(self):
        table = Table("t", Schema([Column("a", ColumnType.BIGINT)]))
        with pytest.raises(SchemaError):
            table.append({"a": 1, "b": 2})

    def test_duplicate_schema_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", ColumnType.BIGINT), Column("a", ColumnType.DOUBLE)])

    def test_partitioning_covers_all_rows(self):
        table = table_from_records("t", [{"x": i} for i in range(10)])
        splits = table.partition_column("x", 3)
        assert sum(len(s) for s in splits) == 10

    def test_storage_and_catalog_lifecycle(self, tmp_path):
        storage = PanguStorage(root_directory=tmp_path)
        catalog = TableCatalog(storage)
        schema = Schema.from_dict({"user": "string", "score": "double"})
        catalog.create_table("scores", schema)
        catalog.insert_rows("scores", [{"user": "u1", "score": 0.5}])
        with pytest.raises(TableAlreadyExistsError):
            catalog.create_table("scores", schema)
        storage.snapshot("scores")
        storage.delete("scores")
        with pytest.raises(TableNotFoundError):
            catalog.get_table("scores")
        restored = storage.restore("scores")
        assert restored.num_rows == 1


class TestSQL:
    def test_parse_full_statement(self):
        statement = parse_sql(
            "SELECT payer_id, COUNT(*) AS n FROM txns "
            "WHERE amount > 100 AND (is_fraud = true OR hour >= 22) "
            "GROUP BY payer_id ORDER BY n DESC LIMIT 5"
        )
        assert statement.table == "txns"
        assert statement.group_by == ["payer_id"]
        assert statement.order_by == "n" and statement.order_desc
        assert statement.limit == 5

    def test_parse_errors(self):
        with pytest.raises(SQLParseError):
            parse_sql("SELEC * FROM t")
        with pytest.raises(SQLParseError):
            parse_sql("SELECT * FROM t WHERE amount >")
        with pytest.raises(SQLParseError):
            parse_sql("")

    def test_where_filter_and_projection(self, client):
        result = client.submit_sql(
            "SELECT transaction_id, amount FROM transactions WHERE is_fraud = true"
        )
        assert result.succeeded
        records = result.result_table.to_records()
        table = client.get_table("transactions")
        expected = sum(1 for row in table.rows() if row["is_fraud"])
        assert len(records) == expected

    def test_group_by_aggregates(self, client):
        result = client.submit_sql(
            "SELECT day, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS mean_amount "
            "FROM transactions GROUP BY day ORDER BY day"
        )
        records = result.result_table.to_records()
        assert records, "expected at least one group"
        for row in records:
            assert row["mean_amount"] == pytest.approx(row["total"] / row["n"])

    def test_limit_and_order(self, client):
        result = client.submit_sql(
            "SELECT transaction_id, amount FROM transactions ORDER BY amount DESC LIMIT 10"
        )
        amounts = [row["amount"] for row in result.result_table.to_records()]
        assert len(amounts) == 10
        assert amounts == sorted(amounts, reverse=True)

    def test_unknown_column_planning_error(self, client):
        executor = SQLExecutor(client.catalog)
        with pytest.raises(SQLPlanError):
            executor.execute("SELECT nope FROM transactions")

    def test_in_and_not_conditions(self, client):
        result = client.submit_sql(
            "SELECT transaction_id FROM transactions WHERE day IN (0, 1) AND NOT is_fraud = true"
        )
        table = client.get_table("transactions")
        expected = sum(1 for row in table.rows() if row["day"] in (0, 1) and not row["is_fraud"])
        assert result.result_table.num_rows == expected


class TestMapReduce:
    def test_edge_aggregation_matches_direct_count(self, client, world):
        result = client.submit_mapreduce(transaction_edge_job(), "transactions")
        assert result.succeeded
        edges = {
            (row["payer_id"], row["payee_id"]): row["weight"]
            for row in result.result_table.to_records()
        }
        sample = world.transactions[:3000]
        pair = (sample[0].payer_id, sample[0].payee_id)
        expected = sum(1 for t in sample if (t.payer_id, t.payee_id) == pair)
        assert edges[pair] == pytest.approx(expected)

    def test_daily_fraud_rate_job(self, client):
        result = client.submit_mapreduce(daily_fraud_rate_job(), "transactions")
        rows = result.result_table.to_records()
        assert all(0.0 <= row["fraud_rate"] <= 1.0 for row in rows)
        assert result.stats is not None and result.stats.input_rows == 3000

    def test_invalid_job_rejected(self):
        job = MapReduceJob(name="", map_function=lambda r: [], reduce_function=lambda k, v: [])
        table = table_from_records("t", [{"x": 1}])
        with pytest.raises(JobError):
            run_mapreduce(job, table)


class TestScheduler:
    def test_job_lifecycle_in_ots(self):
        scheduler = FuxiScheduler()
        instance = scheduler.submit("demo", "sql", [lambda: 1, lambda: 2])
        assert scheduler.ots.get(instance.instance_id).status is InstanceStatus.RUNNING
        scheduler.run_instance(instance.instance_id)
        record = scheduler.ots.get(instance.instance_id)
        assert record.status is InstanceStatus.TERMINATED
        assert record.progress == pytest.approx(1.0)
        assert instance.results() == [1, 2]

    def test_failed_subtask_marks_instance_failed(self):
        scheduler = FuxiScheduler()

        def _boom():
            raise ValueError("broken subtask")

        instance = scheduler.submit("demo", "sql", [_boom])
        scheduler.run_instance(instance.instance_id)
        assert scheduler.ots.get(instance.instance_id).status is InstanceStatus.FAILED

    def test_priority_order(self):
        scheduler = FuxiScheduler()
        executed = []
        scheduler.submit("low", "sql", [lambda: executed.append("low")], priority=20)
        scheduler.submit("high", "sql", [lambda: executed.append("high")], priority=1)
        scheduler.run_pending()
        assert executed[0] == "high"

    def test_resource_exhaustion(self):
        scheduler = FuxiScheduler(total_slots=2)
        with pytest.raises(ResourceExhaustedError):
            scheduler.submit("big", "sql", [lambda: None], slots_per_task=5)

    def test_ots_summary_counts(self):
        ots = OpenTableService()
        record = ots.register("a", "sql")
        ots.set_status(record.instance_id, InstanceStatus.RUNNING)
        summary = ots.summary()
        assert summary["running"] == 1


class TestClient:
    def test_unauthorized_account_rejected(self):
        with pytest.raises(JobError):
            MaxComputeClient(account="intruder", authorized_accounts=["titant_offline"])

    def test_result_table_registration(self, client):
        client.submit_sql(
            "SELECT payer_id, COUNT(*) AS n FROM transactions GROUP BY payer_id",
            result_table="payer_counts",
        )
        assert "payer_counts" in client.list_tables()
        assert client.get_table("payer_counts").num_rows > 0

    def test_store_artifact(self, client):
        table = client.store_artifact("model_meta", [{"version": "v1", "f1": 0.6}])
        assert table.num_rows == 1
        assert "model_meta" in client.list_tables()

    def test_job_summary_counts_terminated_instances(self, client):
        client.submit_sql("SELECT COUNT(*) AS n FROM transactions")
        assert client.job_summary()["terminated"] >= 1


@settings(max_examples=20, deadline=None)
@given(
    amounts=st.lists(st.floats(0.1, 1e5, allow_nan=False), min_size=1, max_size=40),
    threshold=st.floats(1.0, 5e4),
)
def test_sql_where_filter_property(amounts, threshold):
    """SQL WHERE amount > t returns exactly the rows a direct filter returns."""
    client = MaxComputeClient()
    client.load_records("t", [{"i": i, "amount": float(a)} for i, a in enumerate(amounts)])
    result = client.submit_sql(f"SELECT i FROM t WHERE amount > {threshold}")
    expected = sum(1 for a in amounts if a > threshold)
    assert result.result_table.num_rows == expected
