"""Tests of the MaxCompute substrate: tables, SQL, MapReduce, scheduling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    JobError,
    ResourceExhaustedError,
    SchemaError,
    SQLParseError,
    SQLPlanError,
    TableAlreadyExistsError,
    TableNotFoundError,
)
from repro.maxcompute import (
    Column,
    ColumnType,
    FuxiScheduler,
    InstanceStatus,
    MapReduceJob,
    MaxComputeClient,
    OpenTableService,
    PanguStorage,
    Schema,
    Table,
    TableCatalog,
    run_mapreduce,
)
from repro.maxcompute import PartitionedTable, condition_may_match
from repro.maxcompute.mapreduce import daily_fraud_rate_job, transaction_edge_job
from repro.maxcompute.sql import SQLExecutor, WindowAggregate, parse_sql
from repro.maxcompute.table import table_from_records


@pytest.fixture()
def client(world):
    """A MaxCompute client loaded with a sample of the world's transactions."""
    client = MaxComputeClient()
    client.load_records("transactions", [t.to_row() for t in world.transactions[:3000]])
    return client


@pytest.fixture()
def rng():
    """Per-test seeded generator for the randomized SQL-engine suites."""
    import numpy as np

    return np.random.default_rng(20260808)


class TestTables:
    def test_schema_inference_and_coercion(self):
        rows = [{"name": "u1", "amount": 10.5, "count": 3, "flag": True}]
        table = table_from_records("t", rows)
        assert table.schema.column("amount").type is ColumnType.DOUBLE
        assert table.schema.column("count").type is ColumnType.BIGINT
        assert table.schema.column("flag").type is ColumnType.BOOLEAN
        table.append({"name": 5, "amount": "2.5", "count": "7", "flag": "false"})
        assert table.row(1) == {"name": "5", "amount": 2.5, "count": 7, "flag": False}

    def test_unknown_column_rejected(self):
        table = Table("t", Schema([Column("a", ColumnType.BIGINT)]))
        with pytest.raises(SchemaError):
            table.append({"a": 1, "b": 2})

    def test_duplicate_schema_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", ColumnType.BIGINT), Column("a", ColumnType.DOUBLE)])

    def test_partitioning_covers_all_rows(self):
        table = table_from_records("t", [{"x": i} for i in range(10)])
        splits = table.partition_rows(3)
        assert sum(len(s) for s in splits) == 10
        # partition_rows splits by position only: chunks are contiguous,
        # ordered, and cover every index exactly once.
        flat = [i for split in splits for i in split]
        assert flat == list(range(10))
        assert not hasattr(table, "partition_column")

    def test_storage_and_catalog_lifecycle(self, tmp_path):
        storage = PanguStorage(root_directory=tmp_path)
        catalog = TableCatalog(storage)
        schema = Schema.from_dict({"user": "string", "score": "double"})
        catalog.create_table("scores", schema)
        catalog.insert_rows("scores", [{"user": "u1", "score": 0.5}])
        with pytest.raises(TableAlreadyExistsError):
            catalog.create_table("scores", schema)
        storage.snapshot("scores")
        storage.delete("scores")
        with pytest.raises(TableNotFoundError):
            catalog.get_table("scores")
        restored = storage.restore("scores")
        assert restored.num_rows == 1


class TestSQL:
    def test_parse_full_statement(self):
        statement = parse_sql(
            "SELECT payer_id, COUNT(*) AS n FROM txns "
            "WHERE amount > 100 AND (is_fraud = true OR hour >= 22) "
            "GROUP BY payer_id ORDER BY n DESC LIMIT 5"
        )
        assert statement.table == "txns"
        assert statement.group_by == ["payer_id"]
        assert statement.order_by == "n" and statement.order_desc
        assert statement.limit == 5

    def test_parse_errors(self):
        with pytest.raises(SQLParseError):
            parse_sql("SELEC * FROM t")
        with pytest.raises(SQLParseError):
            parse_sql("SELECT * FROM t WHERE amount >")
        with pytest.raises(SQLParseError):
            parse_sql("")

    def test_where_filter_and_projection(self, client):
        result = client.submit_sql(
            "SELECT transaction_id, amount FROM transactions WHERE is_fraud = true"
        )
        assert result.succeeded
        records = result.result_table.to_records()
        table = client.get_table("transactions")
        expected = sum(1 for row in table.rows() if row["is_fraud"])
        assert len(records) == expected

    def test_group_by_aggregates(self, client):
        result = client.submit_sql(
            "SELECT day, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS mean_amount "
            "FROM transactions GROUP BY day ORDER BY day"
        )
        records = result.result_table.to_records()
        assert records, "expected at least one group"
        for row in records:
            assert row["mean_amount"] == pytest.approx(row["total"] / row["n"])

    def test_limit_and_order(self, client):
        result = client.submit_sql(
            "SELECT transaction_id, amount FROM transactions ORDER BY amount DESC LIMIT 10"
        )
        amounts = [row["amount"] for row in result.result_table.to_records()]
        assert len(amounts) == 10
        assert amounts == sorted(amounts, reverse=True)

    def test_unknown_column_planning_error(self, client):
        executor = SQLExecutor(client.catalog)
        with pytest.raises(SQLPlanError):
            executor.execute("SELECT nope FROM transactions")

    def test_in_and_not_conditions(self, client):
        result = client.submit_sql(
            "SELECT transaction_id FROM transactions WHERE day IN (0, 1) AND NOT is_fraud = true"
        )
        table = client.get_table("transactions")
        expected = sum(1 for row in table.rows() if row["day"] in (0, 1) and not row["is_fraud"])
        assert result.result_table.num_rows == expected


class TestMapReduce:
    def test_edge_aggregation_matches_direct_count(self, client, world):
        result = client.submit_mapreduce(transaction_edge_job(), "transactions")
        assert result.succeeded
        edges = {
            (row["payer_id"], row["payee_id"]): row["weight"]
            for row in result.result_table.to_records()
        }
        sample = world.transactions[:3000]
        pair = (sample[0].payer_id, sample[0].payee_id)
        expected = sum(1 for t in sample if (t.payer_id, t.payee_id) == pair)
        assert edges[pair] == pytest.approx(expected)

    def test_daily_fraud_rate_job(self, client):
        result = client.submit_mapreduce(daily_fraud_rate_job(), "transactions")
        rows = result.result_table.to_records()
        assert all(0.0 <= row["fraud_rate"] <= 1.0 for row in rows)
        assert result.stats is not None and result.stats.input_rows == 3000

    def test_invalid_job_rejected(self):
        job = MapReduceJob(name="", map_function=lambda r: [], reduce_function=lambda k, v: [])
        table = table_from_records("t", [{"x": 1}])
        with pytest.raises(JobError):
            run_mapreduce(job, table)


class TestScheduler:
    def test_job_lifecycle_in_ots(self):
        scheduler = FuxiScheduler()
        instance = scheduler.submit("demo", "sql", [lambda: 1, lambda: 2])
        assert scheduler.ots.get(instance.instance_id).status is InstanceStatus.RUNNING
        scheduler.run_instance(instance.instance_id)
        record = scheduler.ots.get(instance.instance_id)
        assert record.status is InstanceStatus.TERMINATED
        assert record.progress == pytest.approx(1.0)
        assert instance.results() == [1, 2]

    def test_failed_subtask_marks_instance_failed(self):
        scheduler = FuxiScheduler()

        def _boom():
            raise ValueError("broken subtask")

        instance = scheduler.submit("demo", "sql", [_boom])
        scheduler.run_instance(instance.instance_id)
        assert scheduler.ots.get(instance.instance_id).status is InstanceStatus.FAILED

    def test_priority_order(self):
        scheduler = FuxiScheduler()
        executed = []
        scheduler.submit("low", "sql", [lambda: executed.append("low")], priority=20)
        scheduler.submit("high", "sql", [lambda: executed.append("high")], priority=1)
        scheduler.run_pending()
        assert executed[0] == "high"

    def test_resource_exhaustion(self):
        scheduler = FuxiScheduler(total_slots=2)
        with pytest.raises(ResourceExhaustedError):
            scheduler.submit("big", "sql", [lambda: None], slots_per_task=5)

    def test_ots_summary_counts(self):
        ots = OpenTableService()
        record = ots.register("a", "sql")
        ots.set_status(record.instance_id, InstanceStatus.RUNNING)
        summary = ots.summary()
        assert summary["running"] == 1


class TestClient:
    def test_unauthorized_account_rejected(self):
        with pytest.raises(JobError):
            MaxComputeClient(account="intruder", authorized_accounts=["titant_offline"])

    def test_result_table_registration(self, client):
        client.submit_sql(
            "SELECT payer_id, COUNT(*) AS n FROM transactions GROUP BY payer_id",
            result_table="payer_counts",
        )
        assert "payer_counts" in client.list_tables()
        assert client.get_table("payer_counts").num_rows > 0

    def test_store_artifact(self, client):
        table = client.store_artifact("model_meta", [{"version": "v1", "f1": 0.6}])
        assert table.num_rows == 1
        assert "model_meta" in client.list_tables()

    def test_job_summary_counts_terminated_instances(self, client):
        client.submit_sql("SELECT COUNT(*) AS n FROM transactions")
        assert client.job_summary()["terminated"] >= 1


def _window_client(rows):
    client = MaxComputeClient()
    client.catalog.register(
        table_from_records(
            "events",
            rows,
            schema=Schema.from_dict(
                {"account": "string", "ts": "bigint", "amount": "double"}
            ),
        )
    )
    return client


def _brute_window(rows, function, column, partition, order, width, *, distinct=False):
    """Per-row frame recompute: value-based RANGE, left-open/right-closed."""
    out = []
    for row in rows:
        frame = [
            other
            for other in rows
            if other[partition] == row[partition]
            and row[order] - width < other[order] <= row[order]
        ]
        if function == "count" and column is None:
            out.append(len(frame))
            continue
        values = [other[column] for other in frame if other[column] is not None]
        if distinct:
            out.append(len(set(values)))
        elif function == "count":
            out.append(len(values))
        elif not values:
            out.append(None)
        elif function == "sum":
            out.append(sum(values))
        elif function == "avg":
            out.append(sum(values) / len(values))
        elif function == "min":
            out.append(min(values))
        else:
            out.append(max(values))
    return out


class TestWindowFunctions:
    def test_parse_over_clause(self):
        statement = parse_sql(
            "SELECT account, SUM(amount) OVER (PARTITION BY account ORDER BY ts "
            "RANGE BETWEEN 3600 PRECEDING AND CURRENT ROW) AS w FROM events"
        )
        assert statement.has_window_functions and not statement.has_aggregates
        item = statement.items[1]
        assert isinstance(item, WindowAggregate)
        assert item.partition_by == "account" and item.order_by == "ts"
        assert item.frame.preceding == 3600.0 and item.output_name == "w"

    def test_parse_over_errors(self):
        with pytest.raises(SQLParseError):
            parse_sql(
                "SELECT SUM(amount) OVER (PARTITION BY a ORDER BY ts DESC "
                "RANGE BETWEEN 10 PRECEDING AND CURRENT ROW) FROM t"
            )
        with pytest.raises(SQLParseError):
            parse_sql("SELECT SUM(DISTINCT amount) FROM t")
        with pytest.raises(SQLParseError):
            parse_sql("SELECT COUNT(DISTINCT *) FROM t")
        with pytest.raises(SQLParseError):
            parse_sql(
                "SELECT SUM(amount) OVER (PARTITION BY a ORDER BY ts "
                "RANGE BETWEEN -10 PRECEDING AND CURRENT ROW) FROM t"
            )

    @pytest.mark.parametrize(
        "function,column,distinct",
        [
            ("sum", "amount", False),
            ("avg", "amount", False),
            ("min", "amount", False),
            ("max", "amount", False),
            ("count", "amount", False),
            ("count", None, False),
            ("count", "amount", True),
        ],
    )
    def test_window_parity_vs_brute_force(self, rng, function, column, distinct):
        rows = [
            {
                "account": f"a{int(rng.integers(0, 5))}",
                "ts": int(rng.integers(0, 500)),
                # Dyadic amounts from a small pool: exact sums under any
                # fold order, and repeated values exercise DISTINCT.
                "amount": int(rng.integers(1, 40)) / 4.0,
            }
            for _ in range(200)
        ]
        width = 120
        target = "*" if column is None else column
        if distinct:
            target = f"DISTINCT {target}"
        sql = (
            f"SELECT account, ts, {function.upper()}({target}) OVER "
            f"(PARTITION BY account ORDER BY ts RANGE BETWEEN {width} "
            f"PRECEDING AND CURRENT ROW) AS w FROM events"
        )
        result = SQLExecutor(_window_client(rows).catalog).execute(sql)
        got = [row["w"] for row in result.rows()]
        # The executor scans a plain table in insertion order, so output row
        # i corresponds to input row i.
        expected = _brute_window(
            rows, function, column, "account", "ts", width, distinct=distinct
        )
        assert got == expected

    def test_window_frame_is_left_open(self):
        # Events exactly `width` apart: the older one must fall out, matching
        # AggregationWindowSpec's (t - W, t] convention.
        rows = [
            {"account": "a", "ts": 0, "amount": 2.0},
            {"account": "a", "ts": 100, "amount": 8.0},
        ]
        result = SQLExecutor(_window_client(rows).catalog).execute(
            "SELECT SUM(amount) OVER (PARTITION BY account ORDER BY ts "
            "RANGE BETWEEN 100 PRECEDING AND CURRENT ROW) AS w FROM events"
        )
        assert [row["w"] for row in result.rows()] == [2.0, 8.0]

    def test_window_peers_share_frames(self):
        rows = [
            {"account": "a", "ts": 10, "amount": 1.0},
            {"account": "a", "ts": 10, "amount": 2.0},
        ]
        result = SQLExecutor(_window_client(rows).catalog).execute(
            "SELECT SUM(amount) OVER (PARTITION BY account ORDER BY ts "
            "RANGE BETWEEN 5 PRECEDING AND CURRENT ROW) AS w FROM events"
        )
        # RANGE frames are value-based: both peer rows see both amounts.
        assert [row["w"] for row in result.rows()] == [3.0, 3.0]

    def test_window_rejects_group_by_mix(self):
        client = _window_client([{"account": "a", "ts": 1, "amount": 1.0}])
        executor = SQLExecutor(client.catalog)
        with pytest.raises(SQLPlanError):
            executor.execute(
                "SELECT account, SUM(amount) OVER (PARTITION BY account ORDER BY ts "
                "RANGE BETWEEN 10 PRECEDING AND CURRENT ROW) AS w "
                "FROM events GROUP BY account"
            )

    def test_window_unknown_partition_column(self):
        client = _window_client([{"account": "a", "ts": 1, "amount": 1.0}])
        with pytest.raises(SQLPlanError):
            SQLExecutor(client.catalog).execute(
                "SELECT SUM(amount) OVER (PARTITION BY bogus ORDER BY ts "
                "RANGE BETWEEN 10 PRECEDING AND CURRENT ROW) FROM events"
            )


class TestPartitionedTable:
    @staticmethod
    def _table(rows):
        table = PartitionedTable(
            "events",
            Schema.from_dict({"day": "bigint", "ts": "bigint", "amount": "double"}),
            partition_key="day",
        )
        table.extend(rows)
        return table

    def test_routing_and_zone_maps(self):
        table = self._table(
            [
                {"day": 1, "ts": 90, "amount": 3.0},
                {"day": 0, "ts": 10, "amount": 1.0},
                {"day": 0, "ts": 20, "amount": None},
            ]
        )
        assert table.num_rows == 3 and table.num_partitions == 2
        assert table.partition_keys() == [0, 1]
        assert table.partition_indices(0) == [1, 2]
        zone = table.zone_map(0).zone("amount")
        assert zone.bounds == (1.0, 1.0) and zone.null_count == 1
        assert table.zone_map(1).zone("ts").bounds == (90, 90)

    def test_null_partition_key_rejected(self):
        table = self._table([])
        with pytest.raises(SchemaError):
            table.append({"day": None, "ts": 1, "amount": 1.0})
        with pytest.raises(SchemaError):
            PartitionedTable(
                "t", Schema.from_dict({"x": "bigint"}), partition_key="nope"
            )

    def test_pruning_skips_only_non_matching(self, client_partitioned):
        client, rows = client_partitioned
        executor = SQLExecutor(client.catalog)
        pruned = executor.execute("SELECT ts, amount FROM events WHERE ts > 250")
        pruned_stats = executor.last_stats
        full = executor.execute(
            "SELECT ts, amount FROM events WHERE ts > 250", prune_partitions=False
        )
        full_stats = executor.last_stats
        assert pruned.to_records() == full.to_records()
        assert full_stats.partitions_skipped == 0
        assert pruned_stats.partitions_skipped > 0
        assert pruned_stats.rows_scanned < full_stats.rows_scanned
        # Every partition whose zone map votes "skip" is provably
        # non-matching, and every partition with a matching row was scanned.
        table = client.get_table("events")
        condition = parse_sql("SELECT ts FROM events WHERE ts > 250").where
        matching_partitions = 0
        for _key, indices, zone in table.iter_partitions():
            has_match = any(table.row(i)["ts"] > 250 for i in indices)
            if not condition_may_match(condition, zone):
                assert not has_match
            if has_match:
                matching_partitions += 1
        assert pruned_stats.partitions_scanned >= matching_partitions

    def test_not_condition_never_prunes_null_rows(self):
        table = PartitionedTable(
            "t",
            Schema.from_dict({"day": "bigint", "flag": "bigint"}),
            partition_key="day",
        )
        table.extend([{"day": 0, "flag": 7}, {"day": 1, "flag": None}])
        client = MaxComputeClient()
        client.catalog.register(table)
        executor = SQLExecutor(client.catalog)
        # Under collapsed 3VL, `flag = 7` is False for the NULL row, so
        # NOT(flag = 7) keeps it — day 1 must not be pruned.
        result = executor.execute("SELECT day FROM t WHERE NOT flag = 7")
        assert [row["day"] for row in result.rows()] == [1]
        assert executor.last_stats.partitions_scanned == 1
        assert executor.last_stats.partitions_skipped == 1

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_pruning_equivalence_property(self, data):
        values = data.draw(
            st.lists(st.integers(0, 99), min_size=1, max_size=60), label="values"
        )
        threshold = data.draw(st.integers(-5, 105), label="threshold")
        negate = data.draw(st.booleans(), label="negate")
        table = PartitionedTable(
            "t",
            Schema.from_dict({"day": "bigint", "v": "bigint"}),
            partition_key="day",
        )
        table.extend([{"day": v // 10, "v": v} for v in values])
        client = MaxComputeClient()
        client.catalog.register(table)
        executor = SQLExecutor(client.catalog)
        predicate = f"v >= {threshold}"
        if negate:
            predicate = f"NOT {predicate}"
        pruned = executor.execute(f"SELECT v FROM t WHERE {predicate}")
        full = executor.execute(
            f"SELECT v FROM t WHERE {predicate}", prune_partitions=False
        )
        assert pruned.to_records() == full.to_records()

    def test_catalog_create_partitioned(self):
        client = MaxComputeClient()
        table = client.create_partitioned_table(
            "p", {"day": "bigint", "x": "double"}, partition_key="day"
        )
        table.append({"day": 3, "x": 1.5})
        assert client.get_table("p") is table
        again = client.create_partitioned_table(
            "p", {"day": "bigint", "x": "double"}, partition_key="day"
        )
        assert again is table


@pytest.fixture()
def client_partitioned(rng):
    """A client holding a day-partitioned events table with 400 random rows."""
    table = PartitionedTable(
        "events",
        Schema.from_dict({"day": "bigint", "ts": "bigint", "amount": "double"}),
        partition_key="day",
    )
    rows = []
    for _ in range(400):
        ts = int(rng.integers(0, 500))
        rows.append({"day": ts // 100, "ts": ts, "amount": int(rng.integers(1, 100)) / 4.0})
    table.extend(rows)
    client = MaxComputeClient()
    client.catalog.register(table)
    return client, rows


class TestSQLEngineBugfixes:
    """Regression pins for the five bugs fixed alongside the window engine."""

    def test_negative_limit_rejected_at_parse_time(self):
        with pytest.raises(SQLParseError):
            parse_sql("SELECT x FROM t LIMIT -5")
        # Zero and positive limits still parse.
        assert parse_sql("SELECT x FROM t LIMIT 0").limit == 0

    def test_empty_result_keeps_source_types(self, client):
        executor = SQLExecutor(client.catalog)
        result = executor.execute(
            "SELECT transaction_id, amount, day FROM transactions WHERE day = 10000"
        )
        assert result.num_rows == 0
        assert result.schema.column("amount").type is ColumnType.DOUBLE
        assert result.schema.column("day").type is ColumnType.BIGINT
        assert result.schema.column("transaction_id").type is ColumnType.STRING
        # A later extend with well-typed rows must not be string-mangled.
        result.append({"transaction_id": "t1", "amount": 2.5, "day": 3})
        assert result.row(0) == {"transaction_id": "t1", "amount": 2.5, "day": 3}

    def test_empty_aggregate_result_typing(self, client):
        executor = SQLExecutor(client.catalog)
        result = executor.execute(
            "SELECT COUNT(*) AS n, SUM(amount) AS s, AVG(amount) AS m, "
            "MIN(day) AS lo FROM transactions WHERE day = 10000"
        )
        assert result.schema.column("n").type is ColumnType.BIGINT
        assert result.schema.column("s").type is ColumnType.DOUBLE
        assert result.schema.column("m").type is ColumnType.DOUBLE
        assert result.schema.column("lo").type is ColumnType.BIGINT
        # Aggregates over zero rows still yield the SQL one-row result.
        assert result.to_records() == [{"n": 0, "s": None, "m": None, "lo": None}]

    def test_order_by_validated_on_empty_results(self, client):
        executor = SQLExecutor(client.catalog)
        with pytest.raises(SQLPlanError):
            executor.execute(
                "SELECT transaction_id FROM transactions WHERE day = 10000 "
                "ORDER BY bogus_column"
            )

    def test_where_columns_validated_upfront(self, client):
        executor = SQLExecutor(client.catalog)
        with pytest.raises(SQLPlanError):
            executor.execute("SELECT transaction_id FROM transactions WHERE bogus = 1")

    def test_schema_infer_scans_all_rows(self):
        schema = Schema.infer([{"x": 1, "y": None}, {"x": 2.5, "y": "s"}])
        assert schema.column("x").type is ColumnType.DOUBLE
        assert schema.column("y").type is ColumnType.STRING
        # The widened schema preserves the float that first-row inference
        # used to truncate through int().
        table = Table("t", schema)
        table.extend([{"x": 1, "y": None}, {"x": 2.5, "y": "s"}])
        assert table.column("x") == [1.0, 2.5]

    def test_schema_infer_rejects_unresolvable_columns(self):
        with pytest.raises(SchemaError):
            Schema.infer([{"x": None}, {"x": None}])
        with pytest.raises(SchemaError):
            Schema.infer([{"x": 1}, {"x": "s"}])
        with pytest.raises(SchemaError):
            Schema.infer([{"x": 1}, {"y": 1}])


@settings(max_examples=20, deadline=None)
@given(
    amounts=st.lists(st.floats(0.1, 1e5, allow_nan=False), min_size=1, max_size=40),
    threshold=st.floats(1.0, 5e4),
)
def test_sql_where_filter_property(amounts, threshold):
    """SQL WHERE amount > t returns exactly the rows a direct filter returns."""
    client = MaxComputeClient()
    client.load_records("t", [{"i": i, "amount": float(a)} for i, a in enumerate(amounts)])
    result = client.submit_sql(f"SELECT i FROM t WHERE amount > {threshold}")
    expected = sum(1 for a in amounts if a > threshold)
    assert result.result_table.num_rows == expected
