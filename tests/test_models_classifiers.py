"""Tests of Isolation Forest, Logistic Regression and GBDT."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError, NotFittedError
from repro.models.base import DetectionResult, validate_training_inputs
from repro.models.gbdt import GradientBoostingClassifier
from repro.models.isolation_forest import IsolationForest, average_path_length
from repro.models.logistic_regression import LogisticRegression, soft_threshold


class TestBaseValidation:
    def test_rejects_non_binary_labels(self):
        with pytest.raises(ModelError):
            validate_training_inputs(np.ones((3, 2)), np.array([0, 1, 2]))

    def test_rejects_nan_features(self):
        features = np.ones((3, 2))
        features[0, 0] = np.nan
        with pytest.raises(ModelError):
            validate_training_inputs(features, np.array([0, 1, 0]))

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(ModelError):
            validate_training_inputs(np.zeros((0, 2)), None)
        with pytest.raises(ModelError):
            validate_training_inputs(np.ones((3, 2)), np.array([0, 1]))

    def test_detection_result_top_fraction(self):
        result = DetectionResult(probabilities=np.array([0.1, 0.9, 0.5, 0.7]))
        top = result.top_fraction(0.5)
        assert set(top.tolist()) == {1, 3}
        assert result.predictions.tolist() == [0, 1, 1, 1]
        with pytest.raises(ModelError):
            result.top_fraction(0.0)


class TestIsolationForest:
    def test_average_path_length_monotonic(self):
        values = [average_path_length(n) for n in (2, 10, 100, 1000)]
        assert values == sorted(values)

    def test_outliers_score_higher(self):
        rng = np.random.default_rng(0)
        inliers = rng.normal(0, 1, size=(500, 2))
        outliers = rng.normal(8, 0.5, size=(10, 2))
        model = IsolationForest(num_trees=50, seed=1).fit(np.vstack([inliers, outliers]))
        scores = model.predict_proba(np.vstack([inliers[:50], outliers]))
        assert scores[50:].mean() > scores[:50].mean()

    def test_scores_in_unit_interval(self, feature_matrices):
        train, test = feature_matrices
        model = IsolationForest(num_trees=30, seed=2).fit(train.values)
        scores = model.predict_proba(test.values)
        assert np.all((scores > 0.0) & (scores < 1.0))

    def test_unsupervised_ignores_labels(self, feature_matrices):
        train, test = feature_matrices
        with_labels = IsolationForest(num_trees=20, seed=3).fit(train.values, train.labels)
        without = IsolationForest(num_trees=20, seed=3).fit(train.values)
        assert np.allclose(
            with_labels.predict_proba(test.values[:20]), without.predict_proba(test.values[:20])
        )

    def test_invalid_params(self):
        with pytest.raises(ModelError):
            IsolationForest(num_trees=0)
        with pytest.raises(ModelError):
            IsolationForest(subsample_size=1)


class TestLogisticRegression:
    def test_soft_threshold(self):
        values = np.array([-3.0, -0.5, 0.5, 3.0])
        assert soft_threshold(values, 1.0).tolist() == [-2.0, 0.0, 0.0, 2.0]

    def test_learns_linear_boundary(self, small_classification_data):
        features, labels = small_classification_data
        model = LogisticRegression(discretize_bins=0, iterations=200, l1=0.01).fit(features, labels)
        accuracy = (model.predict(features) == labels).mean()
        assert accuracy > 0.85

    def test_discretization_improves_or_matches_raw_on_fraud(self, feature_matrices):
        train, test = feature_matrices
        raw = LogisticRegression(discretize_bins=0, iterations=80).fit(train.values, train.labels)
        binned = LogisticRegression(discretize_bins=10, iterations=80).fit(train.values, train.labels)
        # Both must produce valid probabilities; the binned variant is the paper's default.
        for model in (raw, binned):
            scores = model.predict_proba(test.values)
            assert np.all((scores >= 0) & (scores <= 1))

    def test_l1_produces_sparsity(self, small_classification_data):
        features, labels = small_classification_data
        dense = LogisticRegression(discretize_bins=20, iterations=120, l1=0.0).fit(features, labels)
        sparse = LogisticRegression(discretize_bins=20, iterations=120, l1=5.0).fit(features, labels)
        assert sparse.nonzero_coefficients <= dense.nonzero_coefficients

    def test_loss_decreases(self, small_classification_data):
        features, labels = small_classification_data
        model = LogisticRegression(discretize_bins=0, iterations=100).fit(features, labels)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_requires_labels(self, small_classification_data):
        features, _ = small_classification_data
        with pytest.raises(ModelError):
            LogisticRegression().fit(features, None)


class TestGBDT:
    def test_learns_nonlinear_boundary(self, small_classification_data):
        features, labels = small_classification_data
        model = GradientBoostingClassifier(num_trees=40, seed=0).fit(features, labels)
        accuracy = (model.predict(features) == labels).mean()
        assert accuracy > 0.9

    def test_training_loss_decreases(self, small_classification_data):
        features, labels = small_classification_data
        model = GradientBoostingClassifier(num_trees=30, seed=1).fit(features, labels)
        assert model.train_loss_[-1] < model.train_loss_[0]

    def test_squared_objective_supported(self, small_classification_data):
        features, labels = small_classification_data
        model = GradientBoostingClassifier(num_trees=30, objective="squared", seed=2).fit(
            features, labels
        )
        scores = model.predict_proba(features)
        assert np.all((scores >= 0) & (scores <= 1))
        assert (model.predict(features) == labels).mean() > 0.85

    def test_staged_predictions_match_final(self, small_classification_data):
        features, labels = small_classification_data
        model = GradientBoostingClassifier(num_trees=25, seed=3).fit(features, labels)
        staged = dict(model.staged_predict_proba(features, every=5))
        assert np.allclose(staged[25], model.predict_proba(features))
        assert set(staged) == {5, 10, 15, 20, 25}

    def test_feature_importances_sum_to_one(self, small_classification_data):
        features, labels = small_classification_data
        model = GradientBoostingClassifier(num_trees=20, seed=4).fit(features, labels)
        importances = model.feature_importances(features.shape[1])
        assert importances.shape == (features.shape[1],)
        assert importances.sum() == pytest.approx(1.0)

    def test_outperforms_single_tree_on_fraud_data(self, feature_matrices):
        train, test = feature_matrices
        from repro.core.evaluation import evaluate_scores

        gbdt = GradientBoostingClassifier(num_trees=40, seed=5).fit(train.values, train.labels)
        shallow = GradientBoostingClassifier(num_trees=1, seed=5).fit(train.values, train.labels)
        f1_gbdt = evaluate_scores(test.labels, gbdt.predict_proba(test.values)).f1
        f1_single = evaluate_scores(test.labels, shallow.predict_proba(test.values)).f1
        assert f1_gbdt >= f1_single

    def test_invalid_params(self):
        with pytest.raises(ModelError):
            GradientBoostingClassifier(num_trees=0)
        with pytest.raises(ModelError):
            GradientBoostingClassifier(subsample_rows=0.0)
        with pytest.raises(ModelError):
            GradientBoostingClassifier(objective="absolute")  # type: ignore[arg-type]

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            GradientBoostingClassifier().predict_proba(np.ones((2, 3)))


class TestGBDTHistogram:
    """Exact-vs-hist parity suite for the histogram tree method."""

    def test_hist_is_the_default_method(self):
        model = GradientBoostingClassifier()
        assert model.tree_method == "hist"

    def test_identical_predictions_when_bins_exceed_distinct_values(self):
        """With one bin per distinct value (and the full row sample, so both
        methods see every distinct value) the histogram search degenerates to
        the exact sorted search: same trees, same predictions."""
        rng = np.random.default_rng(3)
        features = rng.integers(0, 8, size=(120, 5)).astype(float)
        labels = ((features[:, 0] + features[:, 1] - features[:, 2]) > 4).astype(float)
        kwargs = dict(num_trees=30, subsample_rows=1.0, seed=3)
        exact = GradientBoostingClassifier(tree_method="exact", **kwargs).fit(features, labels)
        hist = GradientBoostingClassifier(
            tree_method="hist", num_bins=256, **kwargs
        ).fit(features, labels)
        assert np.allclose(
            exact.predict_proba(features), hist.predict_proba(features), atol=1e-10
        )

    def test_auc_parity_on_fraud_data(self, feature_matrices):
        from repro.core.evaluation import roc_auc

        train, test = feature_matrices
        aucs = {}
        for method in ("exact", "hist"):
            model = GradientBoostingClassifier(
                num_trees=60, tree_method=method, seed=7
            ).fit(train.values, train.labels)
            aucs[method] = roc_auc(test.labels, model.predict_proba(test.values))
        assert aucs["hist"] >= aucs["exact"] - 0.01

    def test_staged_and_importances_work_with_hist_trees(self, small_classification_data):
        features, labels = small_classification_data
        model = GradientBoostingClassifier(num_trees=20, tree_method="hist", seed=1).fit(
            features, labels
        )
        staged = dict(model.staged_predict_proba(features, every=10))
        assert np.allclose(staged[20], model.predict_proba(features))
        importances = model.feature_importances(features.shape[1])
        assert importances.sum() == pytest.approx(1.0)

    def test_predict_path_validates_inputs_once(self, small_classification_data):
        features, labels = small_classification_data
        model = GradientBoostingClassifier(num_trees=5, seed=0).fit(features, labels)
        calls = {"count": 0}
        original = model._check_predict_inputs

        def _counting(array):
            calls["count"] += 1
            return original(array)

        model._check_predict_inputs = _counting  # type: ignore[method-assign]
        model.predict_proba(features)
        assert calls["count"] == 1

    def test_invalid_histogram_params(self):
        with pytest.raises(ModelError):
            GradientBoostingClassifier(tree_method="approximate")  # type: ignore[arg-type]
        with pytest.raises(ModelError):
            GradientBoostingClassifier(num_bins=1)
        with pytest.raises(ModelError):
            GradientBoostingClassifier(min_samples_leaf=0)
        with pytest.raises(ModelError):
            GradientBoostingClassifier(reg_lambda=-0.5)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_gbdt_probabilities_bounded_property(seed):
    """GBDT probabilities stay in [0, 1] for arbitrary random data."""
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(80, 4))
    labels = (rng.random(80) < 0.3).astype(float)
    if labels.sum() in (0, len(labels)):
        labels[0] = 1.0 - labels[0]
    model = GradientBoostingClassifier(num_trees=5, seed=seed).fit(features, labels)
    scores = model.predict_proba(rng.normal(size=(20, 4)))
    assert np.all((scores >= 0.0) & (scores <= 1.0))
