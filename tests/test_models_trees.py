"""Tests of the decision-tree infrastructure and rule-based detectors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError, NotFittedError
from repro.models.rules import extract_rules
from repro.models.tree.c45 import C45Classifier
from repro.models.tree.cart import RegressionTree
from repro.models.tree.histogram import (
    HistogramBinner,
    HistogramTreeBuilder,
    build_histograms,
)
from repro.models.tree.id3 import ID3Classifier
from repro.models.tree.splitter import (
    best_categorical_split,
    best_histogram_split,
    best_numeric_split,
    best_regression_split,
    entropy,
    gain_ratio,
    gini_impurity,
    information_gain,
)


class TestSplitters:
    def test_entropy_bounds(self):
        assert entropy(np.array([0, 0, 0, 0])) == pytest.approx(0.0)
        assert entropy(np.array([0, 1, 0, 1])) == pytest.approx(1.0)
        assert 0.0 < entropy(np.array([0, 0, 0, 1])) < 1.0

    def test_gini_bounds(self):
        assert gini_impurity(np.array([1, 1, 1])) == pytest.approx(0.0)
        assert gini_impurity(np.array([0, 1])) == pytest.approx(0.5)

    def test_information_gain_perfect_split(self):
        labels = np.array([0, 0, 1, 1])
        partitions = [np.array([0, 0]), np.array([1, 1])]
        assert information_gain(labels, partitions) == pytest.approx(1.0)

    def test_gain_ratio_penalises_many_way_splits(self):
        labels = np.array([0, 0, 1, 1])
        two_way = [np.array([0, 0]), np.array([1, 1])]
        four_way = [np.array([0]), np.array([0]), np.array([1]), np.array([1])]
        assert gain_ratio(labels, two_way) > gain_ratio(labels, four_way)

    def test_best_numeric_split_finds_threshold(self):
        values = np.array([1.0, 2.0, 3.0, 10.0, 11.0, 12.0])
        labels = np.array([0, 0, 0, 1, 1, 1])
        split = best_numeric_split(values, labels)
        assert split is not None
        assert 3.0 < split.threshold < 10.0
        assert split.score == pytest.approx(1.0)

    def test_best_numeric_split_constant_feature(self):
        split = best_numeric_split(np.ones(10), np.arange(10) % 2)
        assert split is None

    def test_best_categorical_split(self):
        values = np.array([0, 0, 1, 1, 2, 2])
        labels = np.array([0, 0, 1, 1, 1, 1])
        split = best_categorical_split(values, labels)
        assert split is not None
        assert set(split.categories.tolist()) == {0, 1, 2}

    def test_best_regression_split_reduces_error(self):
        values = np.linspace(0, 1, 50)
        targets = np.where(values > 0.5, 2.0, -2.0)
        split = best_regression_split(values, targets)
        assert split is not None
        assert abs(split.threshold - 0.5) < 0.1


class TestID3:
    def test_learns_simple_rule(self):
        rng = np.random.default_rng(0)
        features = rng.integers(0, 3, size=(500, 4)).astype(float)
        labels = (features[:, 1] == 2).astype(float)
        model = ID3Classifier(max_depth=3, discretize_bins=0).fit(features, labels)
        predictions = model.predict(features)
        assert (predictions == labels).mean() > 0.95

    def test_requires_labels(self, feature_matrices):
        train, _ = feature_matrices
        with pytest.raises(ModelError):
            ID3Classifier().fit(train.values, None)

    def test_predict_before_fit_raises(self, feature_matrices):
        _, test = feature_matrices
        with pytest.raises(NotFittedError):
            ID3Classifier().predict_proba(test.values)

    def test_fraud_detection_beats_random(self, feature_matrices):
        train, test = feature_matrices
        model = ID3Classifier().fit(train.values, train.labels)
        scores = model.predict_proba(test.values)
        fraud_mean = scores[test.labels == 1].mean() if test.labels.sum() else 1.0
        normal_mean = scores[test.labels == 0].mean()
        assert fraud_mean > normal_mean


class TestC45:
    def test_learns_threshold_rule(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(600, 3))
        labels = (features[:, 0] > 0.3).astype(float)
        model = C45Classifier(max_depth=4).fit(features, labels)
        assert (model.predict(features) == labels).mean() > 0.9

    def test_pruning_reduces_or_keeps_leaf_count(self):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(400, 5))
        labels = (rng.random(400) < 0.3).astype(float)  # pure noise
        unpruned = C45Classifier(max_depth=6, prune=False).fit(features, labels)
        pruned = C45Classifier(max_depth=6, prune=True).fit(features, labels)
        assert pruned.tree_.count_leaves() <= unpruned.tree_.count_leaves()

    def test_handles_categorical_and_continuous(self, feature_matrices):
        train, test = feature_matrices
        model = C45Classifier().fit(train.values, train.labels)
        scores = model.predict_proba(test.values)
        assert scores.shape == (test.num_rows,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ModelError):
            C45Classifier(max_depth=0)
        with pytest.raises(ModelError):
            C45Classifier(pruning_confidence=2.0)


class TestRegressionTree:
    def test_fits_piecewise_constant(self):
        values = np.linspace(0, 1, 200).reshape(-1, 1)
        targets = np.where(values[:, 0] > 0.5, 1.0, -1.0)
        tree = RegressionTree(max_depth=2, min_samples_leaf=5).fit(values, targets)
        predictions = tree.predict(values)
        assert np.corrcoef(predictions, targets)[0, 1] > 0.95

    def test_depth_limit_respected(self):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(300, 4))
        targets = rng.normal(size=300)
        tree = RegressionTree(max_depth=3).fit(features, targets)
        assert tree.tree_.depth() <= 3

    def test_feature_subset_restricts_splits(self):
        rng = np.random.default_rng(4)
        features = rng.normal(size=(300, 4))
        targets = features[:, 3] * 2.0
        tree = RegressionTree(max_depth=2, feature_indices=np.array([0, 1])).fit(features, targets)

        def _features_used(node, used):
            if not node.is_leaf:
                used.add(node.feature_index)
                for child in node.iter_children():
                    _features_used(child, used)
            return used

        assert _features_used(tree.tree_, set()) <= {0, 1}

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RegressionTree().predict(np.ones((2, 2)))


class TestHistogramBinner:
    def test_binned_split_matches_raw_threshold(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(500, 3))
        binner = HistogramBinner(num_bins=16).fit(values)
        binned = binner.transform(values)
        for feature in range(3):
            for bin_index in (0, 3, 7):
                threshold = binner.threshold(feature, bin_index)
                left_by_bin = binned[:, feature] <= bin_index
                left_by_value = values[:, feature] <= threshold
                assert np.array_equal(left_by_bin, left_by_value)

    def test_dtype_follows_bin_count(self):
        values = np.random.default_rng(1).normal(size=(50, 2))
        assert HistogramBinner(num_bins=256).fit_transform(values).dtype == np.uint8
        assert HistogramBinner(num_bins=300).fit_transform(values).dtype == np.uint16

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            HistogramBinner(num_bins=1)
        with pytest.raises(NotFittedError):
            HistogramBinner(num_bins=8).transform(np.ones((2, 2)))
        binner = HistogramBinner(num_bins=8).fit(np.random.default_rng(2).normal(size=(20, 2)))
        with pytest.raises(ModelError):
            binner.transform(np.ones((2, 3)))


class TestHistogramTree:
    def test_matches_exact_tree_on_integer_data(self):
        """One bin per distinct value reproduces the exact sorted search."""
        rng = np.random.default_rng(0)
        features = rng.integers(0, 8, size=(120, 5)).astype(float)
        gradients = rng.normal(size=120)
        exact = RegressionTree(max_depth=3, min_samples_leaf=5).fit(features, gradients)
        binner = HistogramBinner(num_bins=256).fit(features)
        binned = binner.transform(features)
        hist = HistogramTreeBuilder(binner, max_depth=3, min_samples_leaf=5).build(
            binned, gradients, np.ones(120)
        )
        assert np.allclose(exact.predict(features), hist.predict(features))
        assert np.allclose(hist.predict(features), hist.predict_binned(binned))

    def test_depth_limit_and_feature_subset(self):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(300, 4))
        targets = features[:, 3] * 2.0 + rng.normal(size=300) * 0.1
        binner = HistogramBinner(num_bins=32).fit(features)
        binned = binner.transform(features)
        tree = HistogramTreeBuilder(
            binner, max_depth=2, feature_indices=np.array([0, 1])
        ).build(binned, targets, np.ones(300))
        assert tree.tree_.depth() <= 2

        def _features_used(node, used):
            if not node.is_leaf:
                used.add(node.feature_index)
                for child in node.iter_children():
                    _features_used(child, used)
            return used

        assert _features_used(tree.tree_, set()) <= {0, 1}

    def test_histogram_merge_associativity(self):
        """Worker-local histograms merged by summation equal the global one."""
        rng = np.random.default_rng(7)
        features = rng.normal(size=(400, 6))
        gradients = rng.normal(size=400)
        hessians = rng.random(400) + 0.1
        binner = HistogramBinner(num_bins=16).fit(features)
        binned = binner.transform(features)
        node_ids = rng.integers(0, 3, size=400)
        whole = build_histograms(
            binned, gradients, hessians, num_bins=16, node_ids=node_ids, num_nodes=3
        )
        # Any partition of the rows — contiguous, interleaved, unbalanced.
        for partitions in (
            [np.arange(0, 100), np.arange(100, 400)],
            [np.arange(0, 400, 2), np.arange(1, 400, 2)],
            [np.arange(0, 7), np.arange(7, 399), np.array([399])],
        ):
            merged = [np.zeros_like(part) for part in whole]
            for rows in partitions:
                local = build_histograms(
                    binned[rows],
                    gradients[rows],
                    hessians[rows],
                    num_bins=16,
                    node_ids=node_ids[rows],
                    num_nodes=3,
                )
                for target, piece in zip(merged, local):
                    target += piece
            for target, expected in zip(merged, whole):
                assert np.allclose(target, expected)

    def test_best_histogram_split_agrees_with_regression_split(self):
        rng = np.random.default_rng(11)
        values = rng.integers(0, 6, size=200).astype(float)
        gradients = np.where(values > 2.5, 1.0, -1.0) + rng.normal(size=200) * 0.1
        hessians = np.ones(200)
        exact = best_regression_split(values, gradients, hessians=hessians, min_leaf=5)
        binner = HistogramBinner(num_bins=64).fit(values.reshape(-1, 1))
        binned = binner.transform(values.reshape(-1, 1))
        grad_hist, hess_hist, count_hist = build_histograms(
            binned, gradients, hessians, num_bins=64
        )
        hist = best_histogram_split(
            grad_hist[0], hess_hist[0], count_hist[0], min_leaf=5
        )
        assert exact is not None and hist is not None
        assert hist.score == pytest.approx(exact.score)
        assert hist.left_count == exact.left_count
        assert hist.right_count == exact.right_count

    def test_best_histogram_split_rejects_bad_shapes(self):
        with pytest.raises(ModelError):
            best_histogram_split(np.ones(4), np.ones(4), np.ones(4))
        with pytest.raises(ModelError):
            best_histogram_split(np.ones((2, 4)), np.ones((2, 4)), np.ones((2, 5)))
        # A constant feature (single populated bin) yields no split.
        grad = np.zeros((1, 4))
        grad[0, 1] = 3.0
        count = np.zeros((1, 4))
        count[0, 1] = 10.0
        assert best_histogram_split(grad, count.copy(), count, min_leaf=1) is None


class TestRuleExtraction:
    def test_rules_cover_all_rows(self, feature_matrices):
        train, test = feature_matrices
        model = C45Classifier(max_depth=4).fit(train.values, train.labels)
        rules = extract_rules(model.tree_)
        assert len(rules) == model.tree_.count_leaves()
        # Rule-set predictions agree with tree predictions.
        tree_scores = model.predict_proba(test.values[:100])
        rule_scores = rules.predict(test.values[:100])
        assert np.allclose(tree_scores, rule_scores)

    def test_rule_description_readable(self, feature_matrices):
        train, _ = feature_matrices
        model = C45Classifier(max_depth=3).fit(train.values, train.labels)
        rules = extract_rules(model.tree_)
        text = rules.describe(train.feature_names)
        assert "IF" in text and "fraud_probability" in text

    def test_high_risk_rules_filter(self, feature_matrices):
        train, _ = feature_matrices
        model = C45Classifier(max_depth=4).fit(train.values, train.labels)
        rules = extract_rules(model.tree_)
        risky = rules.high_risk_rules(min_probability=0.5)
        assert all(rule.value >= 0.5 for rule in risky)


@settings(max_examples=30, deadline=None)
@given(
    labels=st.lists(st.integers(0, 1), min_size=2, max_size=80),
)
def test_entropy_information_gain_properties(labels):
    """0 <= entropy <= 1 for binary labels, and any split's gain is non-negative."""
    array = np.array(labels, dtype=float)
    value = entropy(array)
    assert 0.0 <= value <= 1.0 + 1e-9
    half = len(labels) // 2
    if half >= 1 and len(labels) - half >= 1:
        gain = information_gain(array, [array[:half], array[half:]])
        assert gain >= -1e-9
        assert gain <= value + 1e-9
