"""Tests of the network representation learning layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EmbeddingError
from repro.graph.network import TransactionNetwork
from repro.graph.random_walk import RandomWalkConfig
from repro.nrl.deepwalk import DeepWalk, DeepWalkConfig
from repro.nrl.embeddings import EmbeddingSet
from repro.nrl.structure2vec import (
    Structure2Vec,
    Structure2VecConfig,
    node_labels_from_transactions,
    node_structural_features,
)
from repro.nrl.word2vec import (
    SkipGramConfig,
    SkipGramTrainer,
    SparseBatch,
    build_negative_table,
    build_vocabulary,
    encode_walk_batch,
    generate_skipgram_pairs,
    generate_skipgram_pairs_batch,
    sgns_batch_update,
    sgns_sparse_gradients,
    sgns_sparse_step,
)


def _two_cluster_network() -> TransactionNetwork:
    """Two dense clusters connected by one bridge edge."""
    network = TransactionNetwork()
    cluster_a = [f"a{i}" for i in range(8)]
    cluster_b = [f"b{i}" for i in range(8)]
    for cluster in (cluster_a, cluster_b):
        for i, source in enumerate(cluster):
            for target in cluster[i + 1 :]:
                network.add_edge(source, target)
    network.add_edge("a0", "b0")
    return network


class TestEmbeddingSet:
    def test_lookup_and_default(self):
        embeddings = EmbeddingSet(["u1", "u2"], np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert embeddings["u1"].tolist() == [1.0, 0.0]
        assert embeddings.get("unknown").tolist() == [0.0, 0.0]
        matrix = embeddings.lookup(["u2", "unknown"])
        assert matrix.shape == (2, 2)
        assert matrix[1].tolist() == [0.0, 0.0]

    def test_duplicate_or_mismatched_rejected(self):
        with pytest.raises(EmbeddingError):
            EmbeddingSet(["u1", "u1"], np.zeros((2, 2)))
        with pytest.raises(EmbeddingError):
            EmbeddingSet(["u1"], np.zeros((2, 2)))

    def test_concatenate_unions_nodes(self):
        left = EmbeddingSet(["a", "b"], np.ones((2, 2)), name="dw")
        right = EmbeddingSet(["b", "c"], 2 * np.ones((2, 3)), name="s2v")
        combined = left.concatenate(right)
        assert combined.dimension == 5
        assert set(combined.node_ids()) == {"a", "b", "c"}
        assert combined["a"].tolist() == [1.0, 1.0, 0.0, 0.0, 0.0]

    def test_most_similar_excludes_self(self):
        embeddings = EmbeddingSet(
            ["a", "b", "c"], np.array([[1.0, 0.0], [0.9, 0.1], [0.0, 1.0]])
        )
        neighbors = embeddings.most_similar("a", top_k=2)
        assert neighbors[0][0] == "b"
        assert all(name != "a" for name, _ in neighbors)

    def test_save_and_load_round_trip(self, tmp_path):
        embeddings = EmbeddingSet(["a", "b"], np.random.default_rng(0).normal(size=(2, 4)))
        embeddings.save(tmp_path / "emb")
        restored = EmbeddingSet.load(tmp_path / "emb")
        assert restored.node_ids() == embeddings.node_ids()
        assert np.allclose(restored.matrix, embeddings.matrix)

    def test_normalized_rows_unit_length(self):
        embeddings = EmbeddingSet(["a", "b"], np.array([[3.0, 4.0], [0.0, 0.0]]))
        normalized = embeddings.normalized()
        assert np.linalg.norm(normalized["a"]) == pytest.approx(1.0)
        assert np.linalg.norm(normalized["b"]) == pytest.approx(0.0)


class TestWord2Vec:
    def test_vocabulary_and_pairs(self):
        corpus = [["a", "b", "c"], ["b", "c", "d"]]
        vocabulary = build_vocabulary(corpus)
        assert len(vocabulary) == 4
        encoded = [vocabulary.encode(sentence) for sentence in corpus]
        centers, contexts = generate_skipgram_pairs(encoded, window=1)
        assert centers.shape == contexts.shape
        assert centers.shape[0] == 8  # 2 sentences x 2 adjacent pairs x 2 directions

    def test_negative_table_prefers_frequent_tokens(self):
        counts = np.array([100.0, 1.0])
        table = build_negative_table(counts, table_size=1000)
        assert (table == 0).mean() > 0.7

    def test_batch_update_reduces_loss(self):
        rng = np.random.default_rng(0)
        w_in = rng.normal(scale=0.1, size=(20, 8))
        w_out = np.zeros((20, 8))
        centers = rng.integers(0, 10, size=256)
        contexts = centers  # perfectly correlated pairs
        negatives = rng.integers(10, 20, size=(256, 3))
        first = sgns_batch_update(w_in, w_out, centers, contexts, negatives, 0.1)
        for _ in range(30):
            last = sgns_batch_update(w_in, w_out, centers, contexts, negatives, 0.1)
        assert last < first

    def test_sparse_gradients_match_dense_update(self):
        rng = np.random.default_rng(1)
        w_in = rng.normal(scale=0.1, size=(10, 4))
        w_out = rng.normal(scale=0.1, size=(10, 4))
        centers = np.array([0, 1, 2])
        contexts = np.array([3, 4, 5])
        negatives = np.array([[6, 7], [8, 9], [6, 9]])
        dense_in, dense_out = w_in.copy(), w_out.copy()
        sgns_batch_update(dense_in, dense_out, centers, contexts, negatives, 0.5)
        grads_in, grads_out, _ = sgns_sparse_gradients(w_in, w_out, centers, contexts, negatives)
        sparse_in, sparse_out = w_in.copy(), w_out.copy()
        for row, grad in grads_in.items():
            sparse_in[row] -= 0.5 * grad
        for row, grad in grads_out.items():
            sparse_out[row] -= 0.5 * grad
        assert np.allclose(sparse_in, dense_in)
        assert np.allclose(sparse_out, dense_out)

    def test_batch_pair_generation_matches_per_sentence(self):
        """Padded-matrix pair generation covers the same pair multiset."""
        sentences = [np.array([0, 1, 2, 3]), np.array([4, 5]), np.array([6])]
        centers, contexts = generate_skipgram_pairs(sentences, window=2)
        padded = np.full((3, 4), -1, dtype=np.int64)
        for row, sentence in enumerate(sentences):
            padded[row, : sentence.shape[0]] = sentence
        batch_centers, batch_contexts = generate_skipgram_pairs_batch(padded, window=2)
        expected = sorted(zip(centers.tolist(), contexts.tolist()))
        actual = sorted(zip(batch_centers.tolist(), batch_contexts.tolist()))
        assert expected == actual

    def test_encode_walk_batch_compacts_pruned_tokens(self):
        # node 1 is pruned (maps to -1); distances must be measured in the
        # compacted sequence, exactly like Vocabulary.encode + pair generation.
        node_to_token = np.array([0, -1, 1, 2], dtype=np.int64)
        batch = np.array([[0, 1, 2, 3], [1, 1, 0, -1]], dtype=np.int64)
        encoded = encode_walk_batch(batch, node_to_token)
        assert encoded.tolist() == [[0, 1, 2, -1], [0, -1, -1, -1]]

    def test_sparse_step_matches_dense_update(self):
        rng = np.random.default_rng(5)
        w_in = rng.normal(scale=0.1, size=(12, 4))
        w_out = rng.normal(scale=0.1, size=(12, 4))
        centers = rng.integers(0, 12, size=64)
        contexts = rng.integers(0, 12, size=64)
        negatives = rng.integers(0, 12, size=(64, 3))
        dense_in, dense_out = w_in.copy(), w_out.copy()
        dense_loss = sgns_batch_update(dense_in, dense_out, centers, contexts, negatives, 0.3)
        batch = SparseBatch.from_pairs(centers, contexts, negatives)
        grad_in, grad_out, sparse_loss = sgns_sparse_step(
            w_in[batch.rows_in], w_out[batch.rows_out], batch
        )
        sparse_in, sparse_out = w_in.copy(), w_out.copy()
        sparse_in[batch.rows_in] -= 0.3 * grad_in
        sparse_out[batch.rows_out] -= 0.3 * grad_out
        assert np.allclose(sparse_in, dense_in)
        assert np.allclose(sparse_out, dense_out)
        assert sparse_loss == pytest.approx(dense_loss)

    def test_trainer_produces_embeddings_for_all_tokens(self):
        corpus = [[f"n{i}", f"n{i+1}", f"n{i+2}"] for i in range(10)]
        trainer = SkipGramTrainer(SkipGramConfig(dimension=6, epochs=1, window=2, seed=0))
        embeddings = trainer.fit(corpus)
        assert embeddings.dimension == 6
        assert len(embeddings) == 12

    def test_empty_corpus_rejected(self):
        with pytest.raises(EmbeddingError):
            build_vocabulary([])


class TestDeepWalk:
    def test_cluster_structure_is_captured(self):
        network = _two_cluster_network()
        model = DeepWalk(
            DeepWalkConfig(
                walk=RandomWalkConfig(walk_length=10, num_walks_per_node=20),
                skipgram=SkipGramConfig(dimension=8, window=3, epochs=3),
                seed=0,
            )
        ).fit(network)
        embeddings = model.embeddings()
        same = embeddings.cosine_similarity("a1", "a2")
        across = embeddings.cosine_similarity("a1", "b5")
        assert same > across

    def test_every_node_has_a_vector(self, network):
        model = DeepWalk(DeepWalkConfig.fast(dimension=8, seed=1)).fit(network)
        embeddings = model.embeddings()
        assert len(embeddings) == network.num_nodes
        assert embeddings.dimension == 8

    def test_unfitted_access_raises(self):
        with pytest.raises(EmbeddingError):
            DeepWalk().embeddings()

    def test_empty_network_rejected(self):
        with pytest.raises(EmbeddingError):
            DeepWalk().fit(TransactionNetwork())


class TestStructure2Vec:
    def test_structural_features_shape(self, network):
        nodes, features = node_structural_features(network)
        assert len(nodes) == network.num_nodes
        assert features.shape == (network.num_nodes, 6)
        assert np.isfinite(features).all()

    def test_node_labels_from_transactions(self, dataset):
        labels = node_labels_from_transactions(dataset.network_transactions)
        assert set(labels.values()) <= {0, 1}
        fraud_payees = {t.payee_id for t in dataset.network_transactions if t.is_fraud}
        assert all(labels[p] == 1 for p in fraud_payees)

    def test_supervised_embeddings_separate_fraud_nodes(self, dataset, network):
        labels = node_labels_from_transactions(dataset.network_transactions)
        model = Structure2Vec(Structure2VecConfig(dimension=8, epochs=40, seed=0)).fit(
            network, node_labels=labels
        )
        embeddings = model.embeddings()
        positives = [n for n in embeddings.node_ids() if labels.get(n) == 1]
        negatives = [n for n in embeddings.node_ids() if labels.get(n) == 0]
        if positives and negatives:
            pos_norm = np.linalg.norm(embeddings.lookup(positives), axis=1).mean()
            neg_norm = np.linalg.norm(embeddings.lookup(negatives), axis=1).mean()
            assert pos_norm != pytest.approx(neg_norm, rel=1e-6)

    def test_requires_labels(self, network):
        with pytest.raises(EmbeddingError):
            Structure2Vec().fit(network)

    def test_loss_decreases(self, dataset, network):
        labels = node_labels_from_transactions(dataset.network_transactions)
        model = Structure2Vec(Structure2VecConfig(dimension=8, epochs=30, seed=1)).fit(
            network, node_labels=labels
        )
        assert model.loss_history[-1] < model.loss_history[0]


@settings(max_examples=10, deadline=None)
@given(dimension=st.integers(2, 16))
def test_embedding_lookup_dimension_property(dimension):
    """lookup always returns (n, dimension) with zeros for unknown nodes."""
    embeddings = EmbeddingSet(["a"], np.ones((1, dimension)))
    matrix = embeddings.lookup(["a", "b", "c"])
    assert matrix.shape == (3, dimension)
    assert np.allclose(matrix[1:], 0.0)
