"""Tests of the process-backed parameter server (PR 6 tentpole).

Covers the shared-memory block lifecycle (including leak safety when a shard
process is killed mid-round), bit-exact equivalence between the inline and
process backends for the cluster primitives and both training drivers, and
the cost-model calibration path the wall-clock bench asserts against.

Equivalence expectation, documented per the issue: the process backend
applies every mutation through one FIFO pipe per shard with the *same* numpy
expressions as the inline :class:`~repro.kunpeng.server.ParameterServerNode`,
and all reads are driver-side after a fence — so per-shard operation order is
identical, shards own disjoint row ranges, and results are **bit-exact**
(``np.array_equal``), not merely close.
"""

from __future__ import annotations

import glob
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ParameterServerError
from repro.kunpeng import (
    ClusterConfig,
    ClusterCostModel,
    KunPengCluster,
    MeasuredRound,
    ProcessShardRuntime,
    SharedBlockManager,
)
from repro.models.distributed import DistributedGBDT
from repro.nrl.distributed import DistributedDeepWalk, DistributedDeepWalkConfig
from repro.graph.random_walk import RandomWalkConfig
from repro.nrl.word2vec import SkipGramConfig


def _shm_segments(prefix: str):
    return glob.glob(f"/dev/shm/{prefix}*")


class TestSharedBlockManager:
    def test_allocate_view_roundtrip_and_unlink(self):
        manager = SharedBlockManager()
        block = manager.allocate("w", (4, 3))
        block[:] = np.arange(12, dtype=np.float64).reshape(4, 3)
        assert np.array_equal(manager.view("w"), block)
        assert _shm_segments(manager.prefix)
        manager.close()
        assert manager.closed
        assert not _shm_segments(manager.prefix)

    def test_attacher_sees_owner_writes(self):
        with SharedBlockManager() as manager:
            block = manager.allocate("w", (2, 2))
            block[:] = 7.0
            segment, view = SharedBlockManager.attach(
                manager.segment_name("w"), (2, 2), np.float64
            )
            try:
                assert np.array_equal(view, block)
                block[0, 0] = -1.0
                assert view[0, 0] == -1.0
            finally:
                del view
                segment.close()

    def test_duplicate_and_unknown_keys_rejected(self):
        with SharedBlockManager() as manager:
            manager.allocate("w", (1, 1))
            with pytest.raises(ParameterServerError):
                manager.allocate("w", (1, 1))
            with pytest.raises(ParameterServerError):
                manager.view("nope")

    def test_closed_manager_rejects_allocation(self):
        manager = SharedBlockManager()
        manager.close()
        with pytest.raises(ParameterServerError):
            manager.allocate("w", (1, 1))
        manager.close()  # idempotent

    def test_context_manager_unlinks_on_exception(self):
        prefix = None
        with pytest.raises(RuntimeError):
            with SharedBlockManager() as manager:
                manager.allocate("w", (8, 8))
                prefix = manager.prefix
                raise RuntimeError("boom")
        assert prefix is not None and not _shm_segments(prefix)


class TestProcessShardRuntime:
    def test_push_then_fenced_read_matches_inline_math(self):
        with ProcessShardRuntime(2) as runtime:
            values = np.ones((10, 4))
            runtime.host(0, "p", 0, values[:5])
            runtime.host(1, "p", 5, values[5:])
            rows = np.array([1, 3, 1], dtype=np.int64)
            grads = np.full((3, 4), 2.0)
            runtime.push(0, "p", rows, grads, learning_rate=0.5)
            expected = np.ones((5, 4))
            np.subtract.at(expected, rows, 0.5 * grads)
            assert np.array_equal(runtime.read(0, "p"), expected)
            # the other shard was never touched
            assert np.array_equal(runtime.read(1, "p", np.array([7])), [[1.0] * 4])

    def test_worker_error_is_latched_and_surfaced_on_fence(self):
        with ProcessShardRuntime(1) as runtime:
            runtime.host(0, "p", 0, np.zeros((4, 2)))
            # out-of-range rows make the shard's fancy index raise
            runtime.push(0, "p", np.array([99]), np.ones((1, 2)))
            with pytest.raises(ParameterServerError, match="failed"):
                runtime.read(0, "p")

    def test_killed_worker_raises_and_leaves_no_shm_orphans(self):
        runtime = ProcessShardRuntime(2)
        runtime.host(0, "p", 0, np.zeros((6, 2)))
        runtime.host(1, "p", 6, np.zeros((6, 2)))
        prefix = runtime.blocks.prefix
        assert len(_shm_segments(prefix)) == 2
        runtime.kill_shard(0)
        assert runtime.alive_shards() == [1]
        # the dead shard surfaces as a ParameterServerError — on the enqueue
        # (broken pipe) or at the latest on the next fenced read
        with pytest.raises(ParameterServerError):
            runtime.push(0, "p", np.array([0]), np.ones((1, 2)))
            runtime.read(0, "p")
        # the surviving shard still works...
        runtime.push(1, "p", np.array([6]), np.ones((1, 2)))
        assert runtime.read(1, "p")[0, 0] == -1.0
        # ...and stop() reclaims every segment despite the dead worker
        runtime.stop()
        assert not _shm_segments(prefix)

    def test_atexit_cleans_up_an_unclosed_runtime(self, tmp_path):
        """A driver that exits without stop() must not leak /dev/shm segments."""
        script = textwrap.dedent(
            """
            import numpy as np
            from repro.kunpeng import ProcessShardRuntime

            runtime = ProcessShardRuntime(2)
            runtime.host(0, "p", 0, np.zeros((64, 8)))
            runtime.host(1, "p", 64, np.zeros((64, 8)))
            runtime.push(0, "p", np.arange(4), np.ones((4, 8)))
            print(runtime.blocks.prefix)
            """
        )
        env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        prefix = result.stdout.strip().splitlines()[-1]
        assert prefix and not _shm_segments(prefix)


def _cluster_exercise(backend: str):
    rng = np.random.default_rng(42)
    matrix = rng.random((60, 6))
    with KunPengCluster(ClusterConfig(num_machines=6), backend=backend) as cluster:
        cluster.create_parameter("p", matrix)
        rows = rng.integers(0, 60, size=40)
        grads = rng.random((40, 6))
        cluster.push_row_block("p", rows, grads, learning_rate=0.2)
        pulled = cluster.pull_row_block("p", rows)
        cluster.accumulate_row_block("p", rows, grads)
        cluster.push_gradients("p", {5: np.ones(6), 31: -np.ones(6)}, learning_rate=0.3)
        cluster.push_model_average("p", [matrix, matrix + 0.5])
        cluster.reset_parameter("p")
        cluster.push_row_block("p", rows, -grads)
        full = cluster.pull_matrix("p")
        singles = cluster.pull_rows("p", [0, 29, 59])
        summary = cluster.workload_summary()
    return pulled, full, singles, summary


class TestBackendEquivalence:
    def test_cluster_primitives_bit_exact_across_backends(self):
        inline = _cluster_exercise("inline")
        process = _cluster_exercise("process")
        assert np.array_equal(inline[0], process[0])
        assert np.array_equal(inline[1], process[1])
        for row in inline[2]:
            assert np.array_equal(inline[2][row], process[2][row])
        # routing/accounting is backend-independent, so traffic matches too
        assert inline[3] == process[3]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterServerError):
            KunPengCluster(ClusterConfig(num_machines=4), backend="threads")

    def test_deepwalk_sparse_bit_exact_across_backends(self, network):
        def _train(backend):
            config = DistributedDeepWalkConfig(
                cluster=ClusterConfig(num_machines=4),
                walk=RandomWalkConfig(walk_length=8, num_walks_per_node=2),
                skipgram=SkipGramConfig(dimension=8, window=3, epochs=1, batch_size=128),
                mode="sparse",
                rounds_per_epoch=2,
                backend=backend,
                seed=11,
            )
            model = DistributedDeepWalk(config).fit(network)
            embeddings = model.embeddings()
            matrix = embeddings.lookup(embeddings.node_ids())
            model.close()
            return matrix, model.loss_history

        inline_matrix, inline_losses = _train("inline")
        process_matrix, process_losses = _train("process")
        assert np.array_equal(inline_matrix, process_matrix)
        assert inline_losses == process_losses

    def test_gbdt_hist_bit_exact_across_backends(self, small_classification_data):
        features, labels = small_classification_data

        def _train(backend):
            model = DistributedGBDT(
                cluster=ClusterConfig(num_machines=4),
                num_trees=10,
                tree_method="hist",
                backend=backend,
                seed=0,
            ).fit(features, labels)
            probabilities = model.predict_proba(features)
            model.close()
            return probabilities

        assert np.array_equal(_train("inline"), _train("process"))


class TestCostModelCalibration:
    def _measurements(self, model: ClusterCostModel):
        measurements = []
        for machines in (4, 8, 16):
            cluster = ClusterConfig(num_machines=machines)
            estimate = model.estimate(
                total_compute_units=9_000.0,
                comm_values_per_round=250_000.0,
                num_rounds=30,
                cluster=cluster,
            )
            measurements.append(
                MeasuredRound(
                    cluster=cluster,
                    total_compute_units=9_000.0,
                    comm_values_per_round=250_000.0,
                    num_rounds=30,
                    measured_seconds=estimate.total_seconds,
                )
            )
        return measurements

    def test_calibrate_recovers_consistent_measurements(self):
        truth = ClusterCostModel(
            compute_seconds_per_unit=2.0,
            comm_seconds_per_value=3e-6,
            sync_seconds_per_round=0.4,
            per_machine_overhead_seconds=1.5,
        )
        measurements = self._measurements(truth)
        fitted = ClusterCostModel().calibrate(measurements)
        assert max(fitted.relative_errors(measurements)) < 1e-6
        # the original model is untouched (calibrate returns a new instance)
        assert ClusterCostModel().compute_seconds_per_unit == 1.0

    def test_calibrated_constants_are_non_negative(self):
        measurements = self._measurements(ClusterCostModel())
        fitted = ClusterCostModel().calibrate(measurements)
        assert fitted.compute_seconds_per_unit >= 0.0
        assert fitted.comm_seconds_per_value >= 0.0
        assert fitted.sync_seconds_per_round >= 0.0
        assert fitted.per_machine_overhead_seconds >= 0.0

    def test_calibrate_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            ClusterCostModel().calibrate([])
        bad = MeasuredRound(
            cluster=ClusterConfig(num_machines=4),
            total_compute_units=1.0,
            comm_values_per_round=1.0,
            num_rounds=1,
            measured_seconds=0.0,
        )
        with pytest.raises(ConfigurationError):
            ClusterCostModel().calibrate([bad])

    def test_relative_errors_shrink_after_calibration(self):
        truth = ClusterCostModel(
            compute_seconds_per_unit=5.0,
            comm_seconds_per_value=1e-5,
            sync_seconds_per_round=2.0,
            per_machine_overhead_seconds=8.0,
        )
        measurements = self._measurements(truth)
        before = max(ClusterCostModel().relative_errors(measurements))
        after = max(ClusterCostModel().calibrate(measurements).relative_errors(measurements))
        assert after < before
