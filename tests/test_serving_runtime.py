"""Tests of the sharded serving runtime: routing, coalescing, rotation,
admission control and the registry ordering underneath hot rotation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import ModelRegistry, ModelVersion
from repro.exceptions import ServingError
from repro.hbase import HBaseClient
from repro.hbase.client import BASIC_FEATURES_FAMILY
from repro.models.gbdt import GradientBoostingClassifier
from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    AlipayServer,
    CoalescerConfig,
    FleetController,
    ModelServer,
    ModelServerConfig,
    RequestCoalescer,
    RoundRobinRouter,
    RuleBasedFallback,
    ServingRouter,
    TransactionRequest,
    default_fraud_rules,
    fleet_cache_stats,
)


def _publish_profiles(hbase, world, version):
    hbase.create_feature_store()
    for profile in world.profiles:
        hbase.put(
            "titant_features",
            profile.user_id,
            BASIC_FEATURES_FAMILY,
            {
                "age": profile.age,
                "gender": profile.gender.value,
                "home_city": profile.home_city,
                "account_age_days": profile.account_age_days,
                "kyc_level": profile.kyc_level,
                "is_merchant": profile.is_merchant,
                "device_count": profile.device_count,
                "community": profile.community,
            },
            version=version,
        )


@pytest.fixture(scope="module")
def champion_challenger(feature_matrices):
    """Two differently-seeded GBDTs over the session basic-feature matrices."""
    train, _ = feature_matrices
    champion = GradientBoostingClassifier(num_trees=20, seed=0).fit(train.values, train.labels)
    challenger = GradientBoostingClassifier(num_trees=8, seed=5).fit(train.values, train.labels)
    return champion, challenger


@pytest.fixture()
def fleet_stack(world, dataset, champion_challenger):
    """Root HBase store + a 3-replica fleet on per-connection caches +
    a registry holding champion (v1) and challenger (v2)."""
    champion, challenger = champion_challenger
    hbase = HBaseClient()
    _publish_profiles(hbase, world, dataset.spec.test_day)
    fleet = [
        ModelServer(hbase.connection(), ModelServerConfig()) for _ in range(3)
    ]
    registry = ModelRegistry()
    registry.register(
        ModelVersion(version="v1", model=champion, threshold=0.5, feature_names=[])
    )
    registry.register(
        ModelVersion(version="v2", model=challenger, threshold=0.5, feature_names=[])
    )
    controller = FleetController(fleet, registry)
    controller.deploy("v1")
    return hbase, fleet, registry, controller


def _requests(dataset, count, *, offset=0):
    return [
        TransactionRequest.from_transaction(txn)
        for txn in dataset.test_transactions[offset : offset + count]
    ]


class TestServingRouter:
    def test_routing_is_deterministic_and_balanced(self):
        router = ServingRouter(4)
        accounts = [f"user_{i}" for i in range(2000)]
        first = [router.route(a) for a in accounts]
        second = [router.route(a) for a in accounts]
        assert first == second
        shards = router.shard_map(accounts)
        assert set(shards) == {0, 1, 2, 3}
        sizes = [len(shards[r]) for r in sorted(shards)]
        # Virtual nodes keep shard shares within a reasonable band of uniform.
        assert min(sizes) > 0.5 * len(accounts) / 4
        assert max(sizes) < 2.0 * len(accounts) / 4

    def test_remove_replica_remaps_only_its_accounts(self):
        router = ServingRouter(4)
        accounts = [f"user_{i}" for i in range(1000)]
        before = {a: router.route(a) for a in accounts}
        router.remove_replica(2)
        after = {a: router.route(a) for a in accounts}
        moved = [a for a in accounts if before[a] != after[a]]
        # Exactly the accounts owned by the removed replica moved, nothing else.
        assert set(moved) == {a for a in accounts if before[a] == 2}
        assert all(after[a] != 2 for a in accounts)

    def test_add_replica_restores_previous_ring(self):
        router = ServingRouter(4)
        accounts = [f"user_{i}" for i in range(500)]
        before = {a: router.route(a) for a in accounts}
        router.remove_replica(1)
        router.add_replica(1)
        assert {a: router.route(a) for a in accounts} == before

    def test_round_robin_router_rotates(self):
        router = RoundRobinRouter(3)
        assert [router.route("same_account") for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ServingError):
            ServingRouter(0)
        router = ServingRouter(2)
        with pytest.raises(ServingError):
            router.add_replica(0)
        with pytest.raises(ServingError):
            router.remove_replica(7)
        with pytest.raises(ServingError):
            ServingRouter(1).remove_replica(0)


class TestShardedFrontEnd:
    def test_account_affinity(self, fleet_stack, dataset):
        hbase, fleet, _, _ = fleet_stack
        router = ServingRouter(len(fleet))
        alipay = AlipayServer(fleet, router=router)
        requests = _requests(dataset, 60)
        for request in requests:
            alipay.process(request)
        # Every request of one payer landed on the replica the ring assigns it.
        for request, served in zip(requests, alipay.served):
            assert served.response is not None
        by_payer = {}
        for request in requests:
            by_payer.setdefault(request.payer_id, set()).add(router.route(request.payer_id))
        assert all(len(replicas) == 1 for replicas in by_payer.values())

    def test_routed_batch_matches_scalar_outcomes(self, fleet_stack, dataset):
        hbase, fleet, _, _ = fleet_stack
        requests = _requests(dataset, 48)
        scalar = AlipayServer(fleet[0])
        scalar_served = [scalar.process(r) for r in requests]
        routed = AlipayServer(fleet, router=ServingRouter(len(fleet)))
        routed_served = routed.process_batch(requests)
        assert [s.request.transaction_id for s in routed_served] == [
            r.transaction_id for r in requests
        ]
        assert [s.response.fraud_probability for s in routed_served] == pytest.approx(
            [s.response.fraud_probability for s in scalar_served]
        )

    def test_sharding_beats_round_robin_on_cache_hits(self, world, dataset, champion_challenger):
        champion, _ = champion_challenger
        hbase = HBaseClient()
        _publish_profiles(hbase, world, dataset.spec.test_day)

        def build_fleet():
            fleet = [
                ModelServer(hbase.connection(row_cache_ttl_s=3600.0), ModelServerConfig())
                for _ in range(3)
            ]
            for server in fleet:
                server.load_model(champion, version="v1", threshold=0.5)
            return fleet

        transactions = dataset.test_transactions
        rr_fleet = build_fleet()
        AlipayServer(rr_fleet).replay_transactions(transactions)
        rr_stats = fleet_cache_stats(rr_fleet)

        sharded_fleet = build_fleet()
        AlipayServer(sharded_fleet, router=ServingRouter(3)).replay_transactions(transactions)
        sharded_stats = fleet_cache_stats(sharded_fleet)

        # Account affinity turns each payer's repeat requests into cache hits
        # on one replica; round-robin re-misses them on every other replica.
        assert sharded_stats["hit_rate"] > rr_stats["hit_rate"]

    def test_router_fleet_size_mismatch_rejected(self, fleet_stack):
        _, fleet, _, _ = fleet_stack
        with pytest.raises(ServingError):
            AlipayServer(fleet, router=ServingRouter(2))


class TestConnectionCaches:
    def test_cross_connection_write_invalidation(self):
        root = HBaseClient()
        root.create_feature_store()
        root.put("titant_features", "u1", BASIC_FEATURES_FAMILY, {"age": 30}, version=1)
        reader = root.connection()
        assert reader.get("titant_features", "u1", BASIC_FEATURES_FAMILY)["age"] == 30
        # A write through a *different* connection must invalidate the
        # reader's private cache — no stale serve across the fleet.
        writer = root.connection()
        writer.put("titant_features", "u1", BASIC_FEATURES_FAMILY, {"age": 31}, version=2)
        assert reader.get("titant_features", "u1", BASIC_FEATURES_FAMILY)["age"] == 31

    def test_write_invalidates_only_its_column_family(self):
        """Streaming aggregate write-through must not evict the row's cached
        profile/embedding reads — only the written family goes stale."""
        from repro.hbase.client import AGGREGATES_FAMILY

        root = HBaseClient()
        root.create_feature_store()
        root.put("titant_features", "u1", BASIC_FEATURES_FAMILY, {"age": 30}, version=1)
        root.put("titant_features", "u1", AGGREGATES_FAMILY, {"count": 1}, version=1)
        root.get("titant_features", "u1", BASIC_FEATURES_FAMILY)
        root.get("titant_features", "u1", AGGREGATES_FAMILY)
        hits_before = root.row_cache_stats()["hits"]
        root.put("titant_features", "u1", AGGREGATES_FAMILY, {"count": 2}, version=2)
        # Basic-features read still hits; aggregates read sees the new value.
        assert root.get("titant_features", "u1", BASIC_FEATURES_FAMILY)["age"] == 30
        assert root.row_cache_stats()["hits"] == hits_before + 1
        assert root.get("titant_features", "u1", AGGREGATES_FAMILY)["count"] == 2

    def test_connections_share_tables_but_not_caches(self):
        root = HBaseClient()
        conn = root.connection()
        conn.create_feature_store()
        root.put("titant_features", "u1", BASIC_FEATURES_FAMILY, {"age": 1}, version=1)
        conn.get("titant_features", "u1", BASIC_FEATURES_FAMILY)
        assert conn.row_cache_stats()["misses"] == 1.0
        assert root.row_cache_stats()["misses"] == 0.0

    def test_discarded_connections_do_not_leak_caches(self):
        """Regression: a dropped connection's cache must leave the shared
        invalidation registry (else every future put pays for dead fleets)."""
        import gc

        root = HBaseClient()
        root.create_feature_store()
        for _ in range(4):
            root.connection()
        gc.collect()
        # The next write prunes the dead weak references.
        root.put("titant_features", "u1", BASIC_FEATURES_FAMILY, {"age": 1}, version=1)
        assert len(root._cache_registry) == 1  # only the root's own cache
        # A live connection stays registered and keeps being invalidated.
        live = root.connection()
        live.get("titant_features", "u1", BASIC_FEATURES_FAMILY)
        root.put("titant_features", "u1", BASIC_FEATURES_FAMILY, {"age": 2}, version=2)
        assert live.get("titant_features", "u1", BASIC_FEATURES_FAMILY)["age"] == 2


class TestRequestCoalescer:
    def test_full_flush_at_max_batch(self, fleet_stack, dataset):
        _, fleet, _, _ = fleet_stack
        alipay = AlipayServer(fleet[0])
        coalescer = RequestCoalescer(alipay, CoalescerConfig(max_batch=4, max_delay_ms=50.0))
        requests = _requests(dataset, 4)
        flushed = []
        for index, request in enumerate(requests):
            flushed.extend(coalescer.submit(request, now_ms=float(index)))
        assert len(flushed) == 4
        assert coalescer.full_flushes == 1
        assert coalescer.deadline_flushes == 0
        assert len(coalescer) == 0

    def test_deadline_flush_bounds_waiting(self, fleet_stack, dataset):
        _, fleet, _, _ = fleet_stack
        alipay = AlipayServer(fleet[0])
        coalescer = RequestCoalescer(alipay, CoalescerConfig(max_batch=64, max_delay_ms=5.0))
        request = _requests(dataset, 1)[0]
        coalescer.submit(request, now_ms=0.0)
        assert coalescer.advance(4.0) == []  # budget not yet exhausted
        flushed = coalescer.advance(5.0)
        assert len(flushed) == 1
        assert coalescer.deadline_flushes == 1
        stats = coalescer.stats()
        assert stats["max_wait_ms"] == pytest.approx(5.0)

    def test_forced_flush_drains_stragglers(self, fleet_stack, dataset):
        _, fleet, _, _ = fleet_stack
        alipay = AlipayServer(fleet[0])
        coalescer = RequestCoalescer(alipay, CoalescerConfig(max_batch=64, max_delay_ms=50.0))
        for index, request in enumerate(_requests(dataset, 3)):
            coalescer.submit(request, now_ms=float(index))
        assert len(coalescer.flush()) == 3
        assert coalescer.forced_flushes == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(ServingError):
            CoalescerConfig(max_batch=0).validate()
        with pytest.raises(ServingError):
            CoalescerConfig(max_delay_ms=-1.0).validate()

    def test_coalesced_replay_matches_scalar_outcomes(self, fleet_stack, dataset):
        _, fleet, _, _ = fleet_stack
        transactions = dataset.test_transactions[:120]
        scalar = AlipayServer(fleet[0])
        scalar_report = scalar.replay_transactions(transactions)
        coalesced = AlipayServer(fleet[0])
        coalesced_report = coalesced.replay_transactions(
            transactions,
            arrival_rate_per_s=2000.0,
            coalescer=CoalescerConfig(max_batch=32, max_delay_ms=5.0),
        )
        assert coalesced_report.total == scalar_report.total == 120
        assert coalesced_report.interrupted == scalar_report.interrupted
        assert coalesced.last_coalescer_stats is not None
        assert coalesced.last_coalescer_stats["mean_batch"] > 1.0
        # Deadline flushes are timestamped at the deadline, so no request's
        # recorded wait ever exceeds the max_delay_ms budget.
        assert coalesced.last_coalescer_stats["max_wait_ms"] <= 5.0

    def test_replay_rejects_inconsistent_modes(self, fleet_stack, dataset):
        _, fleet, _, _ = fleet_stack
        alipay = AlipayServer(fleet[0])
        with pytest.raises(ServingError):
            alipay.replay_transactions(
                dataset.test_transactions[:4],
                batch_size=2,
                coalescer=CoalescerConfig(),
                arrival_rate_per_s=100.0,
            )
        with pytest.raises(ServingError):
            alipay.replay_transactions(
                dataset.test_transactions[:4], coalescer=CoalescerConfig()
            )
        # Fixed-size batching cannot run under an arrival clock — rejecting it
        # beats silently degrading to the scalar path.
        with pytest.raises(ServingError):
            alipay.replay_transactions(
                dataset.test_transactions[:4], batch_size=2, arrival_rate_per_s=100.0
            )


class TestAdmissionControl:
    def test_fluid_queue_admits_under_capacity(self):
        controller = AdmissionController(AdmissionConfig(capacity_rps=1000.0, max_queue_depth=8))
        # Arrivals at exactly capacity never build a backlog.
        decisions = [controller.on_arrival(i * 1.0) for i in range(50)]
        assert all(d is AdmissionDecision.ADMIT for d in decisions)
        assert controller.peak_queue_depth <= 2.0

    def test_sheds_above_bound_and_resumes_with_hysteresis(self):
        config = AdmissionConfig(capacity_rps=100.0, max_queue_depth=10, resume_queue_depth=2)
        controller = AdmissionController(config)
        decisions = [controller.on_arrival(i * 1.0) for i in range(200)]  # 1000 rps arrival
        assert AdmissionDecision.DEGRADE in decisions
        assert controller.peak_queue_depth <= config.max_queue_depth
        # Hysteresis: shedding happens in contiguous runs, not flapping.
        assert controller.shed_intervals < decisions.count(AdmissionDecision.DEGRADE)
        stats = controller.stats()
        assert stats["admitted"] + stats["degraded"] == 200

    def test_clock_must_be_monotonic(self):
        controller = AdmissionController(AdmissionConfig(capacity_rps=10.0))
        controller.on_arrival(100.0)
        with pytest.raises(ServingError):
            controller.on_arrival(50.0)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ServingError):
            AdmissionConfig(capacity_rps=0.0).validate()
        with pytest.raises(ServingError):
            AdmissionConfig(capacity_rps=1.0, max_queue_depth=0).validate()
        with pytest.raises(ServingError):
            AdmissionConfig(capacity_rps=1.0, max_queue_depth=4, resume_queue_depth=9).validate()

    def test_rule_fallback_scores_without_feature_store(self, dataset):
        fallback = RuleBasedFallback()
        request = TransactionRequest.from_transaction(dataset.test_transactions[0])
        response = fallback.respond(request)
        assert response.model_version == "rules-fallback"
        assert 0.0 <= response.fraud_probability <= 1.0
        assert fallback.requests_served == 1

    def test_default_rules_flag_risky_requests(self):
        rules = default_fraud_rules()
        risky = np.array([5000.0, 1.0, 1.0, 0.9, 0.0])  # amount, night, new dev, ip risk
        benign = np.array([25.0, 0.0, 0.0, 0.05, 3.0])
        assert rules.predict_row(risky) > 0.5
        assert rules.predict_row(benign) < 0.5


class TestOverloadReplay:
    def test_overload_sheds_to_rules_with_bounded_queue(self, fleet_stack, dataset):
        _, fleet, _, _ = fleet_stack
        config = AdmissionConfig(capacity_rps=200.0, max_queue_depth=16, resume_queue_depth=8)
        admission = AdmissionController(config)
        alipay = AlipayServer(fleet[0], admission=admission)
        transactions = dataset.test_transactions[:200]
        # Arrivals at 10x the fleet's capacity.
        report = alipay.replay_transactions(transactions, arrival_rate_per_s=2000.0)

        # Zero dropped on the floor: every arrival got an answer.
        assert report.total == len(transactions)
        assert all(s.response is not None for s in alipay.served)
        # The backlog never exceeded its bound.
        assert 0.0 < report.peak_queue_depth <= config.max_queue_depth
        # A meaningful fraction was degraded to rules, and the report says so.
        assert report.degraded > 0
        assert report.shed_to_rules_fraction == pytest.approx(
            report.degraded / report.total
        )
        degraded = [s for s in alipay.served if s.degraded]
        assert len(degraded) == report.degraded
        assert all(s.response.model_version == "rules-fallback" for s in degraded)
        # Admitted requests still went through the full ML path.
        assert any(s.response.model_version == "v1" for s in alipay.served)

    def test_no_shedding_at_sustainable_rate(self, fleet_stack, dataset):
        _, fleet, _, _ = fleet_stack
        admission = AdmissionController(
            AdmissionConfig(capacity_rps=5000.0, max_queue_depth=32)
        )
        alipay = AlipayServer(fleet[0], admission=admission)
        report = alipay.replay_transactions(
            dataset.test_transactions[:100], arrival_rate_per_s=1000.0
        )
        assert report.degraded == 0
        assert report.shed_to_rules_fraction == 0.0

    def test_admission_requires_arrival_clock(self, fleet_stack, dataset):
        _, fleet, _, _ = fleet_stack
        alipay = AlipayServer(
            fleet[0],
            admission=AdmissionController(AdmissionConfig(capacity_rps=100.0)),
        )
        with pytest.raises(ServingError):
            alipay.replay_transactions(dataset.test_transactions[:10])


class TestRegistrySequenceOrdering:
    def _version(self, feature_matrices, name, *, trees=5, seed=2):
        train, _ = feature_matrices
        model = GradientBoostingClassifier(num_trees=trees, seed=seed).fit(
            train.values, train.labels
        )
        return ModelVersion(version=name, model=model, threshold=0.5, feature_names=[])

    def test_overwrite_reregistration_becomes_latest(self, feature_matrices):
        """Regression: latest() must follow registration sequence.

        Under the old insertion-order list, re-registering 'v1' left it in
        its original slot and latest() kept answering 'v2' — the retrained
        model was silently never served.
        """
        registry = ModelRegistry()
        registry.register(self._version(feature_matrices, "v1"))
        registry.register(self._version(feature_matrices, "v2"))
        retrained = self._version(feature_matrices, "v1", seed=9)
        registry.register(retrained, overwrite=True)
        assert registry.latest().version == "v1"
        assert registry.latest() is retrained
        assert registry.versions() == ["v2", "v1"]
        assert registry.rollback().version == "v2"

    def test_history_reports_sequence(self, feature_matrices):
        registry = ModelRegistry()
        registry.register(self._version(feature_matrices, "a"))
        registry.register(self._version(feature_matrices, "b"))
        registry.register(self._version(feature_matrices, "a", seed=3), overwrite=True)
        history = registry.history()
        assert [entry["version"] for entry in history] == ["b", "a"]
        sequences = [entry["sequence"] for entry in history]
        assert sequences == sorted(sequences)


class TestFleetRotation:
    def test_deploy_swaps_whole_fleet(self, fleet_stack):
        _, fleet, _, controller = fleet_stack
        assert controller.fleet_versions() == ["v1", "v1", "v1"]
        report = controller.deploy("v2")
        assert report.version == "v2"
        assert not report.is_canary
        assert controller.fleet_versions() == ["v2", "v2", "v2"]

    def test_canary_then_promote(self, fleet_stack):
        _, fleet, _, controller = fleet_stack
        report = controller.deploy("v2", canary_fraction=0.3)
        assert report.is_canary
        assert controller.canary_version == "v2"
        assert controller.fleet_versions() == ["v2", "v1", "v1"]
        promoted = controller.promote()
        assert promoted.replicas_updated == [1, 2]
        assert controller.fleet_versions() == ["v2", "v2", "v2"]
        assert controller.canary_version is None
        with pytest.raises(ServingError):
            controller.promote()

    def test_rollback_restores_previous_version(self, fleet_stack):
        _, fleet, _, controller = fleet_stack
        controller.deploy("v2")
        report = controller.rollback()
        assert report.version == "v1"
        assert controller.fleet_versions() == ["v1", "v1", "v1"]

    def test_rollback_clears_canary(self, fleet_stack):
        _, fleet, _, controller = fleet_stack
        controller.deploy("v2", canary_fraction=0.5)
        controller.rollback()
        assert controller.canary_version is None
        assert controller.fleet_versions() == ["v1", "v1", "v1"]

    def test_live_rotation_zero_failed_requests(self, fleet_stack, dataset):
        """A mid-stream hot rotation: every request before, during and after
        the swap is answered, and both versions appear in the responses."""
        _, fleet, _, controller = fleet_stack
        alipay = AlipayServer(fleet, router=ServingRouter(len(fleet)))
        first_half = dataset.test_transactions[:80]
        second_half = dataset.test_transactions[80:160]
        alipay.replay_transactions(first_half, batch_size=16)
        controller.deploy("v2")
        report = alipay.replay_transactions(second_half, batch_size=16)
        assert report.total == 160
        assert all(s.response is not None for s in alipay.served)
        versions = {s.response.model_version for s in alipay.served}
        assert versions == {"v1", "v2"}
        # The swap point is clean: v1 answers strictly precede v2 answers.
        versions_in_order = [s.response.model_version for s in alipay.served]
        assert versions_in_order.index("v2") == 80

    def test_shadow_scoring_reports_divergence(self, fleet_stack, dataset):
        _, fleet, _, controller = fleet_stack
        alipay = AlipayServer(fleet, router=ServingRouter(len(fleet)))
        controller.start_shadow("v2")
        alipay.replay_transactions(dataset.test_transactions[:90], batch_size=16)
        live = controller.shadow_report()
        assert live is not None and live.requests == 90
        report = controller.stop_shadow()
        assert report.champion_version == "v1"
        assert report.challenger_version == "v2"
        assert report.requests == 90
        # Differently-seeded models must actually diverge somewhere.
        assert report.mean_abs_divergence > 0.0
        assert report.max_abs_divergence >= report.mean_abs_divergence
        assert 0.0 <= report.decision_flip_rate <= 1.0
        # Shadow scoring never leaked into the served decisions.
        assert all(s.response.model_version == "v1" for s in alipay.served)
        # After stop_shadow the divergence accounting is gone.
        assert controller.shadow_report() is None

    def test_shadow_identical_model_has_zero_divergence(self, fleet_stack, dataset):
        _, fleet, registry, controller = fleet_stack
        registry.register(
            ModelVersion(
                version="v1-copy",
                model=registry.get("v1").model,
                threshold=0.5,
                feature_names=[],
            )
        )
        controller.deploy("v1")
        controller.start_shadow("v1-copy")
        alipay = AlipayServer(fleet)
        alipay.replay_transactions(dataset.test_transactions[:30])
        report = controller.stop_shadow()
        assert report.mean_abs_divergence == 0.0
        assert report.decision_flips == 0

    def test_empty_fleet_rejected(self, fleet_stack):
        _, _, registry, _ = fleet_stack
        with pytest.raises(ServingError):
            FleetController([], registry)
