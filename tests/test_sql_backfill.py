"""SQL-engine backfill parity: loop vs windowed SQL vs streaming prefix.

The contract under test: ``TransactionAggregator.fit(..., engine="sql")``
produces *bit-identical* aggregate state to the in-process loop and to the
streaming ``SlidingWindowAggregator`` prefix at the same window spec, while
scanning a fraction of the day partitions thanks to zone-map pruning.

Fold-order note: the SQL path folds each account's amounts in ascending
``(event_time, input position)`` order, the loop in raw history order.  The
parity streams here use the harness's dyadic amounts (integer multiples of
1/64), which float64 sums represent exactly under any association — so every
comparison is ``==``, even for jittered streams.  For event-time-ordered
histories the two folds are literally the same sequence of additions, so
bit-identity holds for arbitrary float amounts too (checked against the
session world in the last test).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import FeatureError
from repro.features.aggregation import (
    SECONDS_PER_DAY,
    AggregationConfig,
    TransactionAggregator,
)
from repro.features.sql_backfill import SQLBackfillEngine, _sql_number
from repro.features.streaming import SlidingWindowAggregator, event_order
from test_streaming_features import assert_rows_close, make_txn, random_stream


@pytest.fixture()
def rng():
    return np.random.default_rng(987611)


def _snapshot(aggregator):
    return {uid: aggregator.hbase_row(uid) for uid in aggregator.account_ids()}


class TestLoopSQLParity:
    def test_bit_identical_on_random_stream(self, rng):
        events = random_stream(rng, num_events=600, num_accounts=40, num_days=21)
        config = AggregationConfig(window_days=14)
        loop = TransactionAggregator(config).fit(events, as_of_day=20)
        sql = TransactionAggregator(config).fit(events, as_of_day=20, engine="sql")
        assert loop.account_ids() == sql.account_ids()
        assert _snapshot(loop) == _snapshot(sql)

    def test_bit_identical_under_jitter(self, rng):
        # Dyadic amounts: the loop's stream-order fold and the SQL engine's
        # time-order fold sum to the same float bits.
        events = random_stream(
            rng, num_events=400, num_accounts=25, num_days=10, jitter_positions=40
        )
        config = AggregationConfig(window_days=7)
        loop = TransactionAggregator(config).fit(events, as_of_day=9)
        sql = TransactionAggregator(config).fit(events, as_of_day=9, engine="sql")
        assert _snapshot(loop) == _snapshot(sql)

    def test_sub_day_window_and_seconds_as_of(self, rng):
        events = random_stream(rng, num_events=300, num_accounts=20, num_days=3)
        config = AggregationConfig(window_seconds=6 * 3600)
        as_of = 2 * SECONDS_PER_DAY + 13 * 3600
        loop = TransactionAggregator(config).fit(events, as_of_time=as_of)
        sql = TransactionAggregator(config).fit(events, as_of_time=as_of, engine="sql")
        assert _snapshot(loop) == _snapshot(sql)

    def test_empty_window(self):
        events = [make_txn(0, 0, 5, "a", "b", 4.0)]
        sql = TransactionAggregator(AggregationConfig(window_days=1)).fit(
            events, as_of_day=30, engine="sql"
        )
        assert sql.account_ids() == []
        # Unknown accounts still serve the cold-row zeros.
        assert sql.user_row("a")["out_count"] == 0.0

    def test_unknown_engine_rejected(self):
        with pytest.raises(FeatureError):
            TransactionAggregator().fit([], engine="mapreduce")

    def test_loop_engine_clears_backfill_stats(self, rng):
        events = random_stream(rng, num_events=50, num_accounts=10, num_days=3)
        aggregator = TransactionAggregator(AggregationConfig(window_days=2))
        aggregator.fit(events, as_of_day=3, engine="sql")
        assert aggregator.last_backfill_stats is not None
        aggregator.fit(events, as_of_day=3)
        assert aggregator.last_backfill_stats is None


class TestStreamingSQLParity:
    def test_sql_matches_streaming_prefix(self, rng):
        events = random_stream(rng, num_events=500, num_accounts=30, num_days=16)
        events.sort(key=event_order)
        config = AggregationConfig(window_days=14)
        streaming = SlidingWindowAggregator(config)
        for txn in events:
            streaming.ingest(txn)
        # Query at the stream end: the streaming store only retains its
        # window+lateness horizon behind the watermark, so older as_of
        # instants are not answerable from the live state.
        as_of = 16 * SECONDS_PER_DAY - 1
        sql = TransactionAggregator(config).fit(events, as_of_time=as_of, engine="sql")
        for uid in sql.account_ids():
            assert sql.hbase_row(uid) == streaming.hbase_row(uid, as_of=as_of), uid


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_backfills_agree_at_every_as_of(data):
    """Property: loop and SQL backfills agree at arbitrary as_of instants."""
    seed = data.draw(st.integers(0, 2**31 - 1), label="seed")
    jitter = data.draw(st.integers(0, 5), label="jitter")
    as_of_hour = data.draw(st.integers(0, 5 * 24), label="as_of_hour")
    rng = np.random.default_rng(seed)
    events = random_stream(
        rng, num_events=60, num_accounts=8, num_days=4, jitter_positions=jitter
    )
    config = AggregationConfig(window_seconds=36 * 3600)
    as_of = as_of_hour * 3600
    loop = TransactionAggregator(config).fit(events, as_of_time=as_of)
    sql = TransactionAggregator(config).fit(events, as_of_time=as_of, engine="sql")
    assert loop.account_ids() == sql.account_ids()
    for uid in loop.account_ids():
        assert loop.hbase_row(uid) == sql.hbase_row(uid), uid


class TestPartitionSkipping:
    def test_fourteen_day_window_skips_old_partitions(self, rng):
        events = random_stream(rng, num_events=1500, num_accounts=40, num_days=35)
        config = AggregationConfig(window_days=14)
        sql = TransactionAggregator(config).fit(events, as_of_day=35, engine="sql")
        stats = sql.last_backfill_stats
        assert stats is not None
        assert stats.partitions_total == 35
        # The window (as_of - 14d, as_of] spans at most 15 day partitions.
        assert stats.partitions_scanned <= 15
        assert stats.partitions_skipped >= 20
        # Acceptance: >= 2x fewer partitions scanned than a full scan.
        assert stats.partitions_total / stats.partitions_scanned >= 2.0
        assert stats.rows_staged == 1500
        assert stats.rows_matched < stats.rows_staged

    def test_pruned_and_unpruned_backfills_identical(self, rng):
        events = random_stream(rng, num_events=400, num_accounts=20, num_days=20)
        config = AggregationConfig(window_days=5)
        as_of = 19 * SECONDS_PER_DAY - 1
        pruned_engine = SQLBackfillEngine(config)
        full_engine = SQLBackfillEngine(config, prune_partitions=False)
        pruned = pruned_engine.backfill(events, as_of_time=as_of)
        full = full_engine.backfill(events, as_of_time=as_of)
        assert sorted(pruned) == sorted(full)
        for uid in pruned:
            assert vars(pruned[uid]) == vars(full[uid]), uid
            assert pruned[uid].payees == full[uid].payees
            assert pruned[uid].payers == full[uid].payers
        assert full_engine.last_stats.partitions_skipped == 0
        assert pruned_engine.last_stats.partitions_skipped > 0
        assert (
            pruned_engine.last_stats.rows_scanned < full_engine.last_stats.rows_scanned
        )


class TestSQLNumberLiterals:
    def test_integral_floats_render_as_integers(self):
        assert _sql_number(1209600.0) == "1209600"
        assert _sql_number(-1.0) == "-1"

    def test_fractional_values_round_trip(self):
        assert _sql_number(0.5) == "0.5"
        assert float(_sql_number(86399.875)) == 86399.875

    def test_scientific_notation_rejected(self):
        with pytest.raises(FeatureError):
            _sql_number(1e-300)

    def test_huge_integral_floats_stay_exact(self):
        assert float(_sql_number(1e300)) == 1e300


def test_bit_identity_on_event_ordered_world(world):
    """Arbitrary float amounts: exact equality once the history is in the
    canonical event order (the fold sequences coincide addition-for-addition)."""
    history = sorted(world.transactions[:4000], key=event_order)
    config = AggregationConfig(window_days=14)
    as_of_day = max(t.day for t in history) + 1
    loop = TransactionAggregator(config).fit(history, as_of_day=as_of_day)
    sql = TransactionAggregator(config).fit(history, as_of_day=as_of_day, engine="sql")
    assert loop.account_ids() == sql.account_ids()
    mismatched = [
        uid for uid in loop.account_ids() if loop.hbase_row(uid) != sql.hbase_row(uid)
    ]
    assert mismatched == []
    # And the raw (non-event-ordered) history still agrees to 1e-9.
    raw_loop = TransactionAggregator(config).fit(
        world.transactions[:4000], as_of_day=as_of_day
    )
    for uid in sql.account_ids():
        assert_rows_close(raw_loop.hbase_row(uid), sql.hbase_row(uid))
