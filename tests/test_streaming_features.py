"""The streaming sliding-window feature engine and its online/offline parity.

The headline invariant: at any point of an event-time stream, the incremental
:class:`SlidingWindowAggregator` answers *exactly* what a brute-force batch
recompute (:class:`TransactionAggregator`) over the in-window events would —
for every prefix, at window edges, under out-of-order arrival, and across the
offline → online handoff.

Exactness note: the test streams use dyadic amounts (integer multiples of
1/64), which float64 sums represent exactly under *any* association order, so
"element-wise equal" means ``==``, not ``allclose`` — the windowing logic is
what is under test, not float rounding.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.schema import Transaction, TransactionChannel
from repro.exceptions import FeatureError
from repro.features.aggregation import (
    AGGREGATION_FEATURE_NAMES,
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    AggregationConfig,
    AggregationWindowSpec,
    TransactionAggregator,
    transaction_event_time,
)
from repro.features.basic import BASIC_FEATURE_NAMES
from repro.features.streaming import (
    STANDARD_WINDOWS,
    PointInTimeAggregationSource,
    SlidingWindowAggregator,
    WindowSpec,
)
from repro.hbase.client import AGGREGATES_FAMILY, BASIC_FEATURES_FAMILY, HBaseClient
from repro.hbase.store import HBaseTable


# ---------------------------------------------------------------------------
# Stream construction helpers
# ---------------------------------------------------------------------------


def make_txn(index, day, hour, payer, payee, amount) -> Transaction:
    return Transaction(
        transaction_id=f"t{index}",
        day=int(day),
        hour=int(hour),
        payer_id=payer,
        payee_id=payee,
        amount=float(amount),
        channel=TransactionChannel.APP,
        trans_city="city_001",
        device_id="d0",
        is_new_device=False,
        ip_risk_score=0.0,
        payer_recent_txn_count=0,
        payer_recent_amount=0.0,
        payee_recent_inbound_count=0,
        is_fraud=False,
        label_available_day=int(day),
    )


def random_stream(rng, *, num_events, num_accounts, num_days, jitter_positions=0):
    """A random event stream: duplicate accounts, dyadic amounts, optional
    bounded out-of-order arrival (elements displaced by at most
    ``jitter_positions`` from time order)."""
    times = np.sort(rng.integers(0, num_days * 24, size=num_events))
    if jitter_positions:
        order = np.argsort(times + rng.uniform(0, jitter_positions, size=num_events))
        times = times[order]
    events = []
    for index, slot in enumerate(times):
        payer, payee = rng.choice(num_accounts, size=2, replace=False)
        amount = int(rng.integers(1, 1 << 20)) / 64.0
        events.append(
            make_txn(index, slot // 24, slot % 24, f"u{payer:03d}", f"u{payee:03d}", amount)
        )
    return events


def merged_account_history(events, *account_ids):
    """The sub-stream touching any of ``account_ids`` (stream order, deduped)."""
    wanted = set(account_ids)
    return [e for e in events if e.payer_id in wanted or e.payee_id in wanted]


def brute_rows(config, events, as_of_time, account_ids):
    """Brute-force batch recompute: one full fit, rows for ``account_ids``."""
    fitted = TransactionAggregator(config).fit(events, as_of_time=as_of_time)
    return {user_id: fitted.hbase_row(user_id) for user_id in account_ids}


def assert_rows_close(left, right):
    """Row equality tolerant of float fold-order (non-dyadic amounts only).

    The batch path folds amounts linearly in stream order while the streaming
    path folds per-bucket subtotals; for arbitrary float amounts the two
    associations can differ in the last ulp, so sums/means compare with a
    tight relative tolerance while counts, maxima and sets stay exact.
    """
    assert left.keys() == right.keys()
    for key in left:
        if key in ("out_amount_sum", "out_amount_mean", "in_amount_sum", "in_amount_mean"):
            assert left[key] == pytest.approx(right[key], rel=1e-9, abs=1e-9)
        else:
            assert left[key] == right[key], key


# ---------------------------------------------------------------------------
# Satellite: window configuration (seconds-capable, validated)
# ---------------------------------------------------------------------------


class TestAggregationConfig:
    def test_default_is_fourteen_days(self):
        config = AggregationConfig()
        config.validate()
        assert config.effective_window_seconds == 14 * SECONDS_PER_DAY

    def test_window_days_back_compat(self):
        assert AggregationConfig(window_days=6).effective_window_seconds == 6 * SECONDS_PER_DAY
        # Positional construction keeps working.
        assert AggregationConfig(3).effective_window_seconds == 3 * SECONDS_PER_DAY

    def test_window_seconds_equivalent_to_window_days(self):
        events = [
            make_txn(i, day, hour, "a", "b", 16.25)
            for i, (day, hour) in enumerate([(0, 1), (1, 23), (2, 0), (3, 12)])
        ]
        by_days = TransactionAggregator(AggregationConfig(window_days=2)).fit(
            events, as_of_day=4
        )
        by_seconds = TransactionAggregator(
            AggregationConfig(window_seconds=2 * SECONDS_PER_DAY)
        ).fit(events, as_of_day=4)
        assert by_days.hbase_row("a") == by_seconds.hbase_row("a")
        assert by_days.hbase_row("b") == by_seconds.hbase_row("b")

    def test_sub_day_window(self):
        events = [
            make_txn(0, 5, 9, "a", "b", 4.0),
            make_txn(1, 5, 11, "a", "c", 8.0),
            make_txn(2, 5, 12, "a", "b", 2.0),
        ]
        one_hour = TransactionAggregator(
            AggregationConfig(window_seconds=SECONDS_PER_HOUR)
        ).fit(events, as_of_time=5 * SECONDS_PER_DAY + 12 * SECONDS_PER_HOUR)
        row = one_hour.user_row("a")
        # The window (11:00, 12:00] holds only the 12:00 event — the 11:00
        # one sits exactly on the left-open edge and has fallen out.
        assert row["out_count"] == 1.0
        assert row["out_amount_sum"] == 2.0

    @pytest.mark.parametrize("bad", [0, -3, float("nan"), float("inf"), -0.5])
    def test_rejects_degenerate_windows(self, bad):
        with pytest.raises(FeatureError):
            AggregationConfig(window_days=bad).validate()
        with pytest.raises(FeatureError):
            AggregationConfig(window_seconds=bad).validate()
        with pytest.raises(FeatureError):
            AggregationWindowSpec(window_seconds=bad)
        with pytest.raises(FeatureError):
            AggregationWindowSpec(bucket_seconds=bad)
        with pytest.raises(FeatureError):
            SlidingWindowAggregator(AggregationConfig(window_seconds=bad))

    def test_rejects_both_granularities(self):
        with pytest.raises(FeatureError):
            AggregationConfig(window_days=1, window_seconds=60.0).validate()

    def test_rejects_both_as_of_forms(self):
        with pytest.raises(FeatureError):
            TransactionAggregator().fit([], as_of_day=1, as_of_time=100.0)

    def test_unfitted_aggregator_cannot_serve_rows(self):
        """Regression: an unfitted batch aggregator must raise, not silently
        supply all-zero aggregates to a training assembly."""
        from repro.features.assembler import FeatureAssembler

        with pytest.raises(FeatureError):
            TransactionAggregator().user_row("a")
        with pytest.raises(FeatureError):
            TransactionAggregator().hbase_row("a")
        assembler = FeatureAssembler({}, aggregator=TransactionAggregator())
        with pytest.raises(FeatureError):
            assembler.assemble([make_txn(0, 1, 2, "a", "b", 1.0)], with_labels=False)

    def test_window_spec_round_trip(self):
        spec = AggregationWindowSpec(window_seconds=36_000.0, bucket_seconds=600.0)
        assert AggregationWindowSpec.from_dict(spec.to_dict()) == spec
        from_config = AggregationWindowSpec.from_config(AggregationConfig(window_days=2))
        assert from_config.window_seconds == 2 * SECONDS_PER_DAY
        engine = SlidingWindowAggregator.from_window_spec(spec)
        assert engine.primary_window.window_seconds == 36_000.0
        assert engine.bucket_seconds == 600.0


# ---------------------------------------------------------------------------
# Boundary behaviour of the streaming engine
# ---------------------------------------------------------------------------


class TestSlidingWindowBoundaries:
    def test_empty_window(self):
        engine = SlidingWindowAggregator(AggregationConfig(window_days=1))
        row = engine.user_row("ghost")
        assert row["out_count"] == 0.0 and row["in_count"] == 0.0
        vector = engine.features_for(make_txn(0, 3, 4, "a", "b", 1.0))
        # Cold accounts are all-zero except the new-payer flag, exactly like
        # the batch path's treatment of unseen users.
        assert vector[:-1].tolist() == [0.0] * (len(AGGREGATION_FEATURE_NAMES) - 1)
        assert vector[-1] == 1.0

    def test_single_event(self):
        engine = SlidingWindowAggregator(AggregationConfig(window_days=1))
        engine.ingest(make_txn(0, 2, 23, "a", "b", 12.5))
        assert engine.user_row("a")["out_count"] == 1.0
        assert engine.user_row("a")["night_fraction"] == 1.0
        assert engine.user_row("b")["in_amount_max"] == 12.5
        assert engine.hbase_row("b")["payers"] == frozenset({"a"})

    def test_event_exactly_on_window_edge_falls_out(self):
        window = SECONDS_PER_DAY
        engine = SlidingWindowAggregator(AggregationConfig(window_seconds=window))
        first = make_txn(0, 1, 0, "a", "b", 4.0)
        engine.ingest(first)
        t0 = transaction_event_time(first)
        # One second before a full window has passed: still inside.
        assert engine.user_row("a", as_of=t0 + window - 1)["out_count"] == 1.0
        # Exactly one window later the event sits on the left-open edge.
        assert engine.user_row("a", as_of=t0 + window)["out_count"] == 0.0
        # After ingesting an event exactly on that edge, only it remains.
        engine.ingest(make_txn(1, 2, 0, "a", "b", 8.0))
        assert engine.user_row("a")["out_count"] == 1.0
        assert engine.user_row("a")["out_amount_sum"] == 8.0

    def test_events_exactly_on_bucket_edges(self):
        engine = SlidingWindowAggregator(
            AggregationConfig(window_seconds=2 * SECONDS_PER_HOUR)
        )
        for hour in (0, 1, 2, 3):
            engine.ingest(make_txn(hour, 0, hour, "a", "b", 1.0))
        # Window (1h, 3h] holds exactly the 02:00 and 03:00 buckets.
        assert engine.user_row("a")["out_count"] == 2.0

    def test_window_shorter_than_bucket(self):
        engine = SlidingWindowAggregator(
            AggregationConfig(window_seconds=1800.0)
        )
        engine.ingest(make_txn(0, 0, 3, "a", "b", 2.0))
        engine.ingest(make_txn(1, 0, 4, "a", "b", 4.0))
        # A 30-minute window at 04:00 sees only the 04:00 event.
        assert engine.user_row("a")["out_amount_sum"] == 4.0

    def test_whole_window_eviction(self):
        engine = SlidingWindowAggregator(AggregationConfig(window_days=14))
        for index in range(5):
            engine.ingest(make_txn(index, index, 12, "a", "b", 2.0))
        assert engine.user_row("a")["out_count"] == 5.0
        # 40 days of silence, then one unrelated event: every old bucket is
        # beyond the horizon.
        engine.ingest(make_txn(99, 45, 0, "c", "d", 1.0))
        assert engine.user_row("a")["out_count"] == 0.0
        assert engine.user_row("b")["in_count"] == 0.0
        # Touched accounts are evicted on ingest; prune() sweeps the rest.
        engine.prune()
        assert engine.account_ids() == ["c", "d"]

    def test_duplicate_accounts_accumulate_distincts_once(self):
        engine = SlidingWindowAggregator(AggregationConfig(window_days=7))
        for index in range(6):
            engine.ingest(make_txn(index, 1, index, "a", "b", 1.0))
        row = engine.hbase_row("a")
        assert row["out_count"] == 6.0
        assert row["distinct_payees"] == 1.0
        assert engine.hbase_row("b")["payers"] == frozenset({"a"})

    def test_late_event_within_lateness_is_counted(self):
        engine = SlidingWindowAggregator(
            AggregationConfig(window_days=1),
            allowed_lateness_seconds=float(SECONDS_PER_DAY),
        )
        engine.ingest(make_txn(0, 3, 12, "a", "b", 2.0))
        assert engine.ingest(make_txn(1, 3, 2, "c", "a", 4.0))  # 10 h late
        assert engine.user_row("a", as_of=engine.watermark)["in_count"] == 1.0
        # The late event is also visible to a (permitted) late query.
        late_as_of = transaction_event_time(make_txn(1, 3, 2, "c", "a", 4.0))
        assert engine.user_row("a", as_of=late_as_of)["in_count"] == 1.0

    def test_event_beyond_retention_is_dropped(self):
        engine = SlidingWindowAggregator(AggregationConfig(window_days=1))
        engine.ingest(make_txn(0, 10, 0, "a", "b", 2.0))
        before = engine.hbase_row("a")
        # Exactly at watermark - window: outside the left-open window, and
        # with zero allowed lateness, beyond retention.
        assert not engine.ingest(make_txn(1, 9, 0, "c", "a", 4.0))
        assert engine.late_events_dropped == 1
        assert engine.hbase_row("a") == before

    def test_arrival_order_invariance(self):
        rng = np.random.default_rng(5)
        events = random_stream(rng, num_events=300, num_accounts=20, num_days=6)
        span = 6 * SECONDS_PER_DAY
        in_order = SlidingWindowAggregator(
            AggregationConfig(window_days=2), allowed_lateness_seconds=span
        )
        in_order.ingest_many(sorted(events, key=transaction_event_time))
        shuffled = SlidingWindowAggregator(
            AggregationConfig(window_days=2), allowed_lateness_seconds=span
        )
        shuffled.ingest_many(rng.permutation(np.array(events, dtype=object)).tolist())
        # Output is a pure function of the event set, not the arrival order.
        assert in_order.snapshot_rows() == shuffled.snapshot_rows()

    def test_multi_window_matches_independent_single_windows(self):
        rng = np.random.default_rng(11)
        events = random_stream(rng, num_events=400, num_accounts=25, num_days=20)
        multi = SlidingWindowAggregator(windows=STANDARD_WINDOWS)
        singles = [
            SlidingWindowAggregator(
                AggregationConfig(window_seconds=spec.window_seconds)
            )
            for spec in STANDARD_WINDOWS
        ]
        for event in events:
            multi.ingest(event)
            for single in singles:
                single.ingest(event)
        assert len(multi.feature_names) == 3 * len(AGGREGATION_FEATURE_NAMES)
        assert multi.feature_names[: len(AGGREGATION_FEATURE_NAMES)] == AGGREGATION_FEATURE_NAMES
        assert multi.feature_names[len(AGGREGATION_FEATURE_NAMES)].endswith("_24h")
        probe = make_txn(9999, 20, 3, "u001", "u002", 3.5)
        combined = multi.features_for(probe)
        width = len(AGGREGATION_FEATURE_NAMES)
        for position, single in enumerate(singles):
            expected = single.features_for(probe)
            np.testing.assert_array_equal(
                combined[position * width : (position + 1) * width], expected
            )

    def test_transform_matches_batch_transform(self):
        rng = np.random.default_rng(21)
        events = random_stream(rng, num_events=500, num_accounts=30, num_days=10)
        config = AggregationConfig(window_days=4)
        engine = SlidingWindowAggregator(config).replay(events)
        batch = TransactionAggregator(config).fit(events, as_of_time=engine.watermark)
        probes = random_stream(rng, num_events=40, num_accounts=30, num_days=10)
        streaming_matrix = engine.transform(probes)  # defaults to the watermark
        batch_matrix = batch.transform(probes)
        assert streaming_matrix.feature_names == batch_matrix.feature_names
        np.testing.assert_array_equal(streaming_matrix.values, batch_matrix.values)

    def test_rejects_bad_engine_configuration(self):
        with pytest.raises(FeatureError):
            SlidingWindowAggregator(windows=())
        with pytest.raises(FeatureError):
            SlidingWindowAggregator(
                windows=(WindowSpec("a", 60.0), WindowSpec("", 120.0))
            )
        with pytest.raises(FeatureError):
            SlidingWindowAggregator(
                windows=(WindowSpec("a", 60.0), WindowSpec("x", 120.0), WindowSpec("x", 180.0))
            )
        with pytest.raises(FeatureError):
            SlidingWindowAggregator(AggregationConfig(), bucket_seconds=0.0)
        with pytest.raises(FeatureError):
            SlidingWindowAggregator(AggregationConfig(), allowed_lateness_seconds=-1.0)
        with pytest.raises(FeatureError):
            WindowSpec("w", float("nan"))
        with pytest.raises(FeatureError):
            SlidingWindowAggregator(AggregationConfig(), windows=STANDARD_WINDOWS)
        # Buckets coarser than the hour-granular event times would make
        # window membership approximate — rejected, not silently wrong.
        with pytest.raises(FeatureError):
            SlidingWindowAggregator(AggregationConfig(), bucket_seconds=7200.0)
        with pytest.raises(FeatureError):
            AggregationWindowSpec(bucket_seconds=7200.0)

    def test_dormant_accounts_are_swept_automatically(self):
        engine = SlidingWindowAggregator(AggregationConfig(window_days=1))
        engine.prune_interval = 100
        engine.ingest(make_txn(0, 0, 0, "dormant", "other", 1.0))
        # 'dormant' never transacts again; the periodic sweep (not just the
        # touched-account eviction) must still release its buckets.
        for index in range(1, 120):
            engine.ingest(make_txn(index, 10 + index // 24, index % 24, "a", "b", 1.0))
        assert "dormant" not in engine.account_ids()


# ---------------------------------------------------------------------------
# Tentpole: property-based prefix parity (incremental == brute force)
# ---------------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.integers(0, 6),  # day
            st.integers(0, 23),  # hour
            st.integers(0, 7),  # payer slot
            st.integers(0, 7),  # payee offset (shifted to avoid self-transfer)
            st.integers(1, 1 << 20),  # amount in 64ths
        ),
        min_size=1,
        max_size=80,
    ),
    window_seconds=st.sampled_from(
        [SECONDS_PER_HOUR, 7200, 54_321, SECONDS_PER_DAY, 3 * SECONDS_PER_DAY]
    ),
)
def test_prefix_parity_property(data, window_seconds):
    """At every prefix of an arbitrarily-ordered stream the incremental state
    equals a brute-force batch recompute — both at the watermark and at the
    event's own (possibly late) timestamp."""
    events = [
        make_txn(i, day, hour, f"u{payer}", f"u{(payer + 1 + offset) % 9}", raw / 64.0)
        for i, (day, hour, payer, offset, raw) in enumerate(data)
    ]
    span = float(7 * SECONDS_PER_DAY)
    config = AggregationConfig(window_seconds=window_seconds)
    engine = SlidingWindowAggregator(config, allowed_lateness_seconds=span)
    ingested = []
    for event in events:
        event_time = transaction_event_time(event)
        # Serve-before-ingest: the feature vector at the event's own time.
        served = engine.features_for(event)
        reference = TransactionAggregator(config).fit(ingested, as_of_time=event_time)
        expected = reference.transform([event]).values[0]
        np.testing.assert_array_equal(served, expected)

        engine.ingest(event)
        ingested.append(event)
        expected_rows = brute_rows(
            config, ingested, engine.watermark, (event.payer_id, event.payee_id)
        )
        for user_id, expected_row in expected_rows.items():
            assert engine.hbase_row(user_id) == expected_row


class TestParityAcceptance:
    """Five random 2 000-event streams, checked at every prefix.

    Per prefix the freshly touched accounts are checked against a brute-force
    recompute of their merged sub-stream (identical to a full-stream fit for
    those accounts, since per-user aggregates only depend on the user's own
    events); every 250 events the *entire* account universe is checked
    against a full-stream brute-force fit.
    """

    WINDOWS = [
        AggregationConfig(window_seconds=SECONDS_PER_HOUR),
        AggregationConfig(window_seconds=SECONDS_PER_DAY),
        AggregationConfig(window_days=14),
        AggregationConfig(window_seconds=100_000),
        AggregationConfig(window_days=3),
    ]

    @pytest.mark.parametrize("stream_seed", range(5))
    def test_2k_stream_prefix_parity(self, stream_seed):
        rng = np.random.default_rng(1000 + stream_seed)
        events = random_stream(
            rng, num_events=2000, num_accounts=150, num_days=30, jitter_positions=40
        )
        config = self.WINDOWS[stream_seed]
        lateness = float(2 * SECONDS_PER_DAY)
        engine = SlidingWindowAggregator(config, allowed_lateness_seconds=lateness)
        universe = sorted({e.payer_id for e in events} | {e.payee_id for e in events})
        ingested = []
        for position, event in enumerate(events):
            engine.ingest(event)
            ingested.append(event)
            history = merged_account_history(ingested, event.payer_id, event.payee_id)
            reference = TransactionAggregator(config).fit(
                history, as_of_time=engine.watermark
            )
            assert engine.hbase_row(event.payer_id) == reference.hbase_row(event.payer_id)
            assert engine.hbase_row(event.payee_id) == reference.hbase_row(event.payee_id)
            if (position + 1) % 250 == 0:
                expected = brute_rows(config, ingested, engine.watermark, universe)
                for user_id in universe:
                    assert engine.hbase_row(user_id) == expected[user_id]
        assert engine.events_ingested == len(events)
        assert engine.late_events_dropped == 0

    @pytest.mark.slow
    @pytest.mark.parametrize("stream_seed", range(5))
    def test_2k_stream_full_brute_force_soak(self, stream_seed):
        """Opt-in soak: the same five streams, but every prefix is checked
        with a full-stream brute-force fit (quadratic — not tier-1)."""
        rng = np.random.default_rng(1000 + stream_seed)
        events = random_stream(
            rng, num_events=2000, num_accounts=150, num_days=30, jitter_positions=40
        )
        config = self.WINDOWS[stream_seed]
        engine = SlidingWindowAggregator(
            config, allowed_lateness_seconds=float(2 * SECONDS_PER_DAY)
        )
        ingested = []
        for event in events:
            engine.ingest(event)
            ingested.append(event)
            reference = TransactionAggregator(config).fit(
                ingested, as_of_time=engine.watermark
            )
            assert engine.hbase_row(event.payer_id) == reference.hbase_row(event.payer_id)
            assert engine.hbase_row(event.payee_id) == reference.hbase_row(event.payee_id)


# ---------------------------------------------------------------------------
# Satellite: crash recovery — WAL/stream replay rebuilds identical state
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def _run_stream(self, events, config):
        from repro.serving.streaming import StreamingFeatureUpdater

        hbase = HBaseClient()
        hbase.create_feature_store()
        engine = SlidingWindowAggregator(config)
        updater = StreamingFeatureUpdater(engine, hbase)
        for event in events:
            updater.observe_transaction(event)
        return hbase, engine, updater

    def test_replayed_aggregator_is_bit_identical(self):
        rng = np.random.default_rng(77)
        events = random_stream(rng, num_events=800, num_accounts=60, num_days=20)
        config = AggregationConfig(window_days=7)
        _, live, _ = self._run_stream(events, config)

        recovered = SlidingWindowAggregator(config)
        recovered.ingest_many(events)  # same fixed-seed stream, same order
        assert recovered.watermark == live.watermark
        assert recovered.events_ingested == live.events_ingested
        live_rows = live.snapshot_rows()
        recovered_rows = recovered.snapshot_rows()
        assert recovered_rows == live_rows  # exact float equality, all accounts

    def test_wal_replay_restores_aggregate_rows(self):
        rng = np.random.default_rng(78)
        events = random_stream(rng, num_events=600, num_accounts=40, num_days=15)
        config = AggregationConfig(window_days=7)
        hbase, engine, _ = self._run_stream(events, config)

        # Crash: the MemStore is lost; a fresh region replays the WAL.
        recovered = HBaseTable(
            "titant_features", hbase.table("titant_features").column_families()
        )
        replayed = hbase.wal.replay(recovered, table_name="titant_features")
        assert replayed == hbase.wal_size()
        for user_id in engine.account_ids():
            assert recovered.get(user_id, AGGREGATES_FAMILY) == hbase.get(
                "titant_features", user_id, AGGREGATES_FAMILY
            )
        # Accounts written at the final watermark also match the live
        # in-memory engine bit-for-bit (rows of accounts last touched earlier
        # are that touch's snapshot — write-on-ingest semantics).
        final = events[-1]
        for user_id in (final.payer_id, final.payee_id):
            assert recovered.get(user_id, AGGREGATES_FAMILY) == engine.hbase_row(user_id)


# ---------------------------------------------------------------------------
# Satellite: online freshness through HBase write-through + RowCache
# ---------------------------------------------------------------------------


@pytest.fixture()
def streaming_stack(world, dataset):
    """A served model whose plan includes the aggregation block, backed by an
    HBase store with a long-TTL row cache and a streaming updater."""
    from repro.features.assembler import FeatureAssembler
    from repro.models.gbdt import GradientBoostingClassifier
    from repro.serving import (
        AlipayServer,
        ModelServer,
        ModelServerConfig,
        StreamingFeatureUpdater,
    )

    # A window longer than the whole world (30 days of data): nothing ages
    # out mid-test, so freshness deltas below are exact (+1 per ingest).
    config = AggregationConfig(window_days=40)
    test_day = dataset.spec.test_day
    history = dataset.train_transactions

    batch_aggregator = TransactionAggregator(config).fit(history, as_of_day=test_day)
    assembler = FeatureAssembler(world.profiles_by_id, aggregator=batch_aggregator)
    train = assembler.assemble(dataset.train_transactions[:400])
    model = GradientBoostingClassifier(num_trees=5, seed=3).fit(train.values, train.labels)

    hbase = HBaseClient(row_cache_ttl_s=600.0)  # stale for 10 min unless invalidated
    hbase.create_feature_store()
    for profile in world.profiles:
        hbase.put(
            "titant_features",
            profile.user_id,
            BASIC_FEATURES_FAMILY,
            {
                "age": profile.age,
                "gender": profile.gender.value,
                "home_city": profile.home_city,
                "account_age_days": profile.account_age_days,
                "kyc_level": profile.kyc_level,
                "is_merchant": profile.is_merchant,
                "device_count": profile.device_count,
                "community": profile.community,
            },
            version=test_day,
        )
    hbase.bulk_load(
        "titant_features",
        AGGREGATES_FAMILY,
        batch_aggregator.snapshot_rows(),
        version=test_day,
    )

    engine = SlidingWindowAggregator(config).replay(history)
    updater = StreamingFeatureUpdater(engine, hbase, start_version=test_day)
    server = ModelServer(hbase, ModelServerConfig())
    server.load_model(model, version="stream_v1", threshold=0.5, plan=assembler.plan)
    alipay = AlipayServer(server, feature_updater=updater)
    return hbase, server, alipay, updater, assembler


class TestOnlineFreshness:
    AGG_START = len(BASIC_FEATURE_NAMES)

    def _column(self, name):
        return self.AGG_START + AGGREGATION_FEATURE_NAMES.index(name)

    def test_next_request_sees_ingested_transaction(self, streaming_stack, dataset):
        from repro.serving import TransactionRequest

        hbase, server, alipay, updater, _ = streaming_stack
        txn = dataset.test_transactions[0]
        probe = make_txn("probe", txn.day, min(txn.hour + 1, 23), txn.payer_id, txn.payee_id, 5.0)

        before = server.plan_executor.assemble_single(probe)
        # Read again: the second read must come from the row cache (long TTL).
        hits_before = hbase.row_cache_stats()["hits"]
        server.plan_executor.assemble_single(probe)
        assert hbase.row_cache_stats()["hits"] > hits_before

        alipay.process(TransactionRequest.from_transaction(txn), was_fraud=txn.is_fraud)

        after = server.plan_executor.assemble_single(probe)
        out_count = self._column("agg_payer_out_count")
        out_sum = self._column("agg_payer_out_amount_sum")
        in_count = self._column("agg_payee_in_count")
        assert after[out_count] == before[out_count] + 1.0
        assert after[out_sum] == pytest.approx(before[out_sum] + txn.amount, rel=1e-9)
        assert after[in_count] == before[in_count] + 1.0
        # The write-through invalidated the cached rows: no stale serve.
        assert updater.events_observed == 1

    def test_fresh_online_vector_matches_offline_recompute(self, streaming_stack, world, dataset):
        from repro.features.plan import FeaturePlanExecutor, InMemoryFeatureSource
        from repro.serving import TransactionRequest

        _, server, alipay, updater, assembler = streaming_stack
        for txn in dataset.test_transactions[:25]:
            alipay.process(TransactionRequest.from_transaction(txn), was_fraud=txn.is_fraud)
        probe = dataset.test_transactions[30]
        online = server.plan_executor.assemble_single(probe)
        offline = FeaturePlanExecutor(
            assembler.plan,
            InMemoryFeatureSource(world.profiles_by_id, aggregates=updater.aggregator),
        ).assemble_single(probe)
        np.testing.assert_array_equal(online, offline)

    def test_refresh_re_anchors_idle_account_rows(self):
        """A sub-day window decays between touches: without a refresh the
        stored row keeps the stale counts, with one it is re-anchored — even
        when the engine has auto-pruned the idle account out of its state
        entirely (prune_interval=3 forces that mid-stream)."""
        from repro.serving import StreamingFeatureUpdater

        for interval, expected_count in ((None, 1.0), (float(SECONDS_PER_HOUR), 0.0)):
            hbase = HBaseClient()
            hbase.create_feature_store()
            engine = SlidingWindowAggregator(
                AggregationConfig(window_seconds=SECONDS_PER_HOUR)
            )
            engine.prune_interval = 3
            updater = StreamingFeatureUpdater(
                engine, hbase, refresh_interval_seconds=interval
            )
            updater.observe_transaction(make_txn(0, 0, 9, "idle", "x", 5.0))
            # Six hours of unrelated traffic: 'idle' never transacts again.
            for hour in range(10, 16):
                updater.observe_transaction(make_txn(hour, 0, hour, "a", "b", 1.0))
            assert "idle" not in engine.account_ids()  # pruned away
            row = hbase.get("titant_features", "idle", AGGREGATES_FAMILY)
            assert row["out_count"] == expected_count
            if interval is not None:
                assert updater.refreshes >= 1

    def test_process_batch_keeps_later_chunks_fresh(self, streaming_stack, dataset):
        from repro.serving import TransactionRequest

        _, server, alipay, updater, _ = streaming_stack
        requests = [
            TransactionRequest.from_transaction(txn)
            for txn in dataset.test_transactions[:8]
        ]
        alipay.process_batch(requests)
        assert updater.events_observed == 8
        probe = dataset.test_transactions[0]
        row = updater.aggregator.user_row(probe.payer_id, as_of=updater.aggregator.watermark)
        assert row["out_count"] >= 1.0


# ---------------------------------------------------------------------------
# Training-time features must carry online (score-then-ingest) semantics
# ---------------------------------------------------------------------------


class TestPointInTimeTrainingFeatures:
    def test_aggregate_row_layout_is_the_shared_contract(self):
        from repro.features.aggregation import AGGREGATE_ROW_FIELDS

        batch_row = TransactionAggregator().fit([]).user_row("x")
        streaming_row = SlidingWindowAggregator(AggregationConfig()).user_row("x")
        assert list(batch_row) == AGGREGATE_ROW_FIELDS
        assert list(streaming_row) == AGGREGATE_ROW_FIELDS

    def test_first_transfer_trains_as_new_payer(self):
        """Regression: the naive fit-then-transform construction let a
        training transaction see itself, so first-time transfers trained
        with new_payer_fraction = 0 while serving saw 1 — inverted skew."""
        source = PointInTimeAggregationSource(AggregationConfig(window_days=14), [])
        batch = [
            make_txn(0, 1, 10, "A", "B", 5.0),
            make_txn(1, 1, 12, "A", "B", 7.0),
        ]
        block = source.aggregation_block(batch)
        new_payer = AGGREGATION_FEATURE_NAMES.index("agg_payee_new_payer_fraction")
        out_count = AGGREGATION_FEATURE_NAMES.index("agg_payer_out_count")
        assert block[0][new_payer] == 1.0  # A is new to B at serve time
        assert block[1][new_payer] == 0.0  # second transfer: A already known
        assert block[0][out_count] == 0.0  # a row never includes its own txn
        assert block[1][out_count] == 1.0

    def test_block_matches_online_stream_replay(self):
        """The offline block equals serving the same transactions inside one
        event-time replay of the full stream (the AlipayServer contract) —
        including when the batch is an arbitrary subset of the history."""
        rng = np.random.default_rng(42)
        events = random_stream(rng, num_events=400, num_accounts=30, num_days=10)
        config = AggregationConfig(window_days=3)
        batch = events[150:220]  # a mid-stream slice of the history itself
        block = PointInTimeAggregationSource(config, events).aggregation_block(batch)

        engine = SlidingWindowAggregator(config)
        wanted = {txn.transaction_id: i for i, txn in enumerate(batch)}
        expected = np.zeros_like(block)
        for event in sorted(
            events, key=lambda t: (transaction_event_time(t), t.transaction_id)
        ):
            position = wanted.get(event.transaction_id)
            if position is not None:
                expected[position] = engine.features_for(event)
            engine.ingest(event)
        np.testing.assert_array_equal(block, expected)

    def test_duplicate_batch_rows_each_see_their_predecessors(self):
        """Regression: duplicate transaction ids in a batch (oversampled
        training rows) must not produce zero rows or self-inclusive counts."""
        source = PointInTimeAggregationSource(AggregationConfig(window_days=14), [])
        txn = make_txn(7, 2, 10, "A", "B", 4.0)
        block = source.aggregation_block([txn, txn, txn])
        out_count = AGGREGATION_FEATURE_NAMES.index("agg_payer_out_count")
        assert [row[out_count] for row in block] == [0.0, 1.0, 2.0]

    def test_block_memoized_per_batch(self):
        rng = np.random.default_rng(13)
        events = random_stream(rng, num_events=120, num_accounts=10, num_days=5)
        source = PointInTimeAggregationSource(AggregationConfig(window_days=3), events[:80])
        batch = events[80:]
        first = source.aggregation_block(batch)
        second = source.aggregation_block(batch)
        np.testing.assert_array_equal(first, second)
        assert first is not second  # callers get their own copy

    def test_shared_preparation_rebuilds_on_window_change(self, world, dataset, network):
        from repro.core.pipeline import OfflineTrainingPipeline, SlicePreparation

        preparation = SlicePreparation(dataset=dataset, network=network)
        fortnight = OfflineTrainingPipeline(
            world.profiles_by_id, aggregation=AggregationConfig(window_days=14)
        )
        hourly = OfflineTrainingPipeline(
            world.profiles_by_id, aggregation=AggregationConfig(window_seconds=SECONDS_PER_HOUR)
        )
        assert fortnight.aggregation_source_for(preparation).window_spec.window_seconds == 14 * SECONDS_PER_DAY
        # A different pipeline sharing the same (expensive) preparation must
        # not silently reuse the first pipeline's window.
        assert hourly.aggregation_source_for(preparation).window_spec.window_seconds == SECONDS_PER_HOUR
        assert fortnight.aggregator_for(preparation).config.window_days == 14
        assert hourly.aggregator_for(preparation).config.window_seconds == SECONDS_PER_HOUR

    def test_replay_is_permutation_independent(self):
        rng = np.random.default_rng(8)
        events = random_stream(rng, num_events=250, num_accounts=15, num_days=4)
        config = AggregationConfig(window_days=4)
        sorted_in = SlidingWindowAggregator(config).replay(events)
        shuffled_in = SlidingWindowAggregator(config).replay(
            rng.permutation(np.array(events, dtype=object)).tolist()
        )
        assert sorted_in.snapshot_rows() == shuffled_in.snapshot_rows()

    def test_pipeline_training_matrix_is_point_in_time(self, world, dataset, network):
        from repro.core.config import FeatureSetName
        from repro.core.pipeline import OfflineTrainingPipeline, SlicePreparation

        config = AggregationConfig(window_days=14)
        pipeline = OfflineTrainingPipeline(world.profiles_by_id, aggregation=config)
        preparation = SlicePreparation(dataset=dataset, network=network)
        assembler = pipeline.assembler_for(preparation, FeatureSetName.BASIC)
        probes = dataset.train_transactions[:40]
        matrix = assembler.assemble(probes)
        block = matrix.values[:, len(BASIC_FEATURE_NAMES):len(BASIC_FEATURE_NAMES) + 12]
        expected = pipeline.aggregation_source_for(preparation).aggregation_block(probes)
        np.testing.assert_array_equal(block, expected)


# ---------------------------------------------------------------------------
# Tentpole: the pipeline exports one windowing definition for both worlds
# ---------------------------------------------------------------------------


class TestPipelineWindowExport:
    @pytest.fixture()
    def trained(self, world, dataset, network):
        from repro.core.config import DetectorName, FeatureSetName, Table1Configuration
        from repro.core.pipeline import OfflineTrainingPipeline, SlicePreparation

        pipeline = OfflineTrainingPipeline(
            world.profiles_by_id, aggregation=AggregationConfig(window_days=14)
        )
        preparation = SlicePreparation(dataset=dataset, network=network)
        configuration = Table1Configuration(1, DetectorName.GBDT, FeatureSetName.BASIC)
        bundle = pipeline.train(preparation, configuration)
        return pipeline, preparation, bundle

    def test_plan_carries_window_spec(self, trained):
        from repro.features.plan import FeaturePlan

        _, _, bundle = trained
        assert bundle.plan.aggregation is not None
        assert bundle.plan.aggregation.window_seconds == 14 * SECONDS_PER_DAY
        names = bundle.plan.feature_names
        assert names[len(BASIC_FEATURE_NAMES):len(BASIC_FEATURE_NAMES) + 12] == AGGREGATION_FEATURE_NAMES
        restored = FeaturePlan.from_json(bundle.plan.to_json())
        assert restored == bundle.plan
        assert restored.aggregation == bundle.plan.aggregation

    def test_legacy_plan_json_still_loads(self):
        from repro.features.plan import FeaturePlan

        legacy = FeaturePlan.from_json(
            '{"embedding_blocks": [], "embedding_side": "both"}'
        )
        assert legacy.aggregation is None
        assert legacy.num_features == len(BASIC_FEATURE_NAMES)

    def test_deploy_hands_back_seeded_updater_at_batch_state(self, trained, dataset):
        from repro.serving import ModelServer

        pipeline, preparation, bundle = trained
        hbase = HBaseClient()
        server = ModelServer(hbase)
        frozen_hbase = HBaseClient()
        assert (
            pipeline.deploy(
                bundle, preparation, frozen_hbase, ModelServer(frozen_hbase),
                streaming_updater=False,
            )
            is None
        )
        updater = pipeline.deploy(bundle, preparation, hbase, server)
        assert updater is not None

        # Handoff parity: the streaming engine, seeded by replaying the same
        # history, reproduces the batch aggregator's published rows exactly
        # when queried at the batch as-of instant.
        batch = pipeline.aggregator_for(preparation)
        handoff = dataset.spec.test_day * SECONDS_PER_DAY - 1
        for user_id in batch.account_ids():
            assert_rows_close(
                updater.aggregator.hbase_row(user_id, as_of=handoff),
                batch.hbase_row(user_id),
            )

    def test_served_aggregates_flow_end_to_end(self, trained, dataset):
        from repro.serving import AlipayServer, ModelServer

        pipeline, preparation, bundle = trained
        hbase = HBaseClient()
        server = ModelServer(hbase)
        updater = pipeline.deploy(bundle, preparation, hbase, server)
        alipay = AlipayServer(server, feature_updater=updater)
        report = alipay.replay_transactions(dataset.test_transactions[:60])
        assert report.total == 60
        assert updater.events_observed == 60

    def test_sub_day_window_enables_refresh_by_default(self, world, dataset, network):
        from repro.core.pipeline import OfflineTrainingPipeline, SlicePreparation

        preparation = SlicePreparation(dataset=dataset, network=network)
        hourly = OfflineTrainingPipeline(
            world.profiles_by_id, aggregation=AggregationConfig(window_seconds=SECONDS_PER_HOUR)
        )
        updater = hourly.build_streaming_updater(preparation, HBaseClient())
        assert updater.refresh_interval_seconds == SECONDS_PER_HOUR
        daily = OfflineTrainingPipeline(
            world.profiles_by_id, aggregation=AggregationConfig(window_days=14)
        )
        assert (
            daily.build_streaming_updater(preparation, HBaseClient()).refresh_interval_seconds
            is None
        )

    def test_wal_cap_bounds_streaming_write_through(self):
        hbase = HBaseClient(wal_max_entries=100)
        hbase.create_feature_store()
        from repro.serving import StreamingFeatureUpdater

        updater = StreamingFeatureUpdater(
            SlidingWindowAggregator(AggregationConfig(window_days=1)), hbase
        )
        for index in range(200):
            updater.observe_transaction(make_txn(index, 0, index % 24, "a", "b", 1.0))
        assert hbase.wal_size() == 100

    def test_custom_publish_version_does_not_freeze_streaming(self, trained):
        """Regression: streaming write versions must supersede whatever
        version publish_features bulk-loaded, or 'latest' reads keep serving
        the frozen snapshot forever."""
        pipeline, preparation, _ = trained
        hbase = HBaseClient()
        pipeline.publish_features(preparation, hbase, version=100)
        updater = pipeline.build_streaming_updater(preparation, hbase)
        assert updater.current_version >= 100
        updater.observe_transaction(make_txn("fresh", 30, 1, "A", "B", 3.0))
        row = hbase.get("titant_features", "A", AGGREGATES_FAMILY)
        assert row["out_count"] == updater.aggregator.user_row("A")["out_count"]

    def test_experiment_serving_stack_attaches_updater(self, world):
        from repro.core import ExperimentConfig, ExperimentRunner, ModelHyperparameters
        from repro.core.config import DetectorName, FeatureSetName, Table1Configuration

        configuration = Table1Configuration(1, DetectorName.GBDT, FeatureSetName.BASIC)
        runner = ExperimentRunner(
            world,
            ExperimentConfig(
                num_datasets=1,
                network_days=18,
                train_days=6,
                hyperparameters=ModelHyperparameters.laptop_scale(),
                configurations=[configuration],
                aggregation=AggregationConfig(window_days=14),
            ),
        )
        dataset = runner.datasets()[0]
        preparation = runner.preparation_for(dataset)
        _, _, _, alipay = runner.build_serving_stack(preparation, configuration)
        assert alipay.feature_updater is not None
        alipay.replay_transactions(dataset.test_transactions[:20])
        assert alipay.feature_updater.events_observed == 20

    def test_replay_is_event_time_ordered(self, trained, dataset):
        from repro.serving import AlipayServer, ModelServer

        pipeline, preparation, bundle = trained
        transactions = list(dataset.test_transactions[:80])
        shuffled = list(np.random.default_rng(3).permutation(np.array(transactions, dtype=object)))

        states = []
        for replay_input in (transactions, shuffled):
            hbase = HBaseClient()
            server = ModelServer(hbase)
            updater = pipeline.deploy(bundle, preparation, hbase, server)
            AlipayServer(server, feature_updater=updater).replay_transactions(replay_input)
            states.append(updater.aggregator.snapshot_rows())
        assert states[0] == states[1]
