"""The streaming data layer: bit-identity, resume, scale, and its harness.

Covers the PR-7 data-path refactor end to end:

* ``WorldStream`` is the single source of truth behind ``generate_world`` —
  streamed and materialized outputs are **bit-identical** at the same seed,
  invariant to batch size, and resumable mid-day from a checkpoint.
* ``ScalableWorldStream`` generates event-time-ordered, schema-valid,
  deterministic transactions with bounded state, under a diurnal + burst
  arrival process.
* ``WorldConfig.validate`` rejects fraud/burst parameter combinations that
  exceed the daily transaction budget (satellite a).
* ``ProgressTracker`` counts and rates without requiring any logging setup
  (satellite b).
* ``RollingDatasets.from_stream`` matches the materialized builder, the
  serving replay consumes streams lazily, and ``scripts/check_bench.py``
  enforces the shared artifact schema (satellites d/e plumbing).
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import generate_world
from repro.datagen.datasets import RollingDatasets, small_world_config
from repro.datagen.profiles import ProfileConfig
from repro.datagen.schema import transaction_sort_key, validate_transaction
from repro.datagen.stream import ScalableWorldStream, WorldStream
from repro.datagen.transactions import (
    ArrivalConfig,
    BurstSpec,
    FraudConfig,
    WorldConfig,
)
from repro.exceptions import DataGenerationError
from repro.hbase import HBaseClient
from repro.hbase.client import BASIC_FEATURES_FAMILY
from repro.logging_utils import ProgressTracker
from repro.models.gbdt import GradientBoostingClassifier
from repro.serving.alipay import AlipayServer
from repro.serving.model_server import ModelServer, ModelServerConfig

REPO_ROOT = Path(__file__).resolve().parents[1]


def _stream_config(num_users: int = 400, num_days: int = 6, seed: int = 7) -> WorldConfig:
    return WorldConfig(
        profile=ProfileConfig(num_users=num_users, num_communities=6, seed=seed),
        num_days=num_days,
        transactions_per_user_per_day=0.5,
        seed=seed,
    )


def _scalable_config(
    num_users: int = 3_000, num_days: int = 3, seed: int = 13, **kwargs
) -> WorldConfig:
    return WorldConfig(
        profile=ProfileConfig(num_users=num_users, num_communities=8, seed=seed),
        num_days=num_days,
        transactions_per_user_per_day=0.4,
        seed=seed,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Tentpole: streamed == materialized, bit for bit
# ---------------------------------------------------------------------------


class TestWorldStreamBitIdentity:
    def test_streamed_equals_materialized_world(self):
        """The core refactor guarantee: same seed, same bytes."""
        config = _stream_config()
        world = generate_world(config)
        streamed = list(WorldStream(_stream_config()))
        assert len(streamed) == len(world.transactions)
        assert streamed == world.transactions
        assert [p.user_id for p in WorldStream(_stream_config()).profiles] == [
            p.user_id for p in world.profiles
        ]

    def test_materialize_view_is_identical(self):
        config = _stream_config(seed=21)
        via_stream = WorldStream(config).materialize()
        direct = generate_world(_stream_config(seed=21))
        assert via_stream.transactions == direct.transactions
        assert via_stream.profiles == direct.profiles

    @settings(max_examples=8, deadline=None)
    @given(batch_size=st.integers(min_value=1, max_value=700))
    def test_batch_size_invariance(self, batch_size):
        """Batching is pure re-grouping: any batch size, same event sequence."""
        config = _stream_config(num_users=150, num_days=3, seed=5)
        expected = list(WorldStream(config))
        rebatched = [
            txn
            for batch in WorldStream(_stream_config(num_users=150, num_days=3, seed=5)).batches(
                batch_size
            )
            for txn in batch
        ]
        assert rebatched == expected

    def test_event_order_mode_sorts_without_changing_the_multiset(self):
        config = _stream_config(num_users=200, num_days=4, seed=9)
        legacy = list(WorldStream(config))
        ordered = list(WorldStream(_stream_config(num_users=200, num_days=4, seed=9), order="event"))
        keys = [transaction_sort_key(t) for t in ordered]
        assert keys == sorted(keys)
        assert sorted(t.transaction_id for t in ordered) == sorted(
            t.transaction_id for t in legacy
        )


class TestCheckpointResume:
    def test_mid_day_resume_continues_the_exact_sequence(self):
        reference = list(WorldStream(_stream_config(seed=31)))
        stream = WorldStream(_stream_config(seed=31))
        events = stream.events()
        consumed = [next(events) for _ in range(len(reference) // 3)]
        checkpoint = stream.checkpoint()
        assert checkpoint.offset > 0 or checkpoint.day > 0  # genuinely mid-stream

        resumed = WorldStream(_stream_config(seed=31))
        resumed.seek(checkpoint)
        tail = list(resumed)
        assert consumed + tail == reference

    def test_resume_is_repeatable(self):
        stream = WorldStream(_stream_config(seed=31))
        events = stream.events()
        for _ in range(57):
            next(events)
        checkpoint = stream.checkpoint()
        resumed_a = WorldStream(_stream_config(seed=31))
        resumed_a.seek(checkpoint)
        resumed_b = WorldStream(_stream_config(seed=31))
        resumed_b.seek(checkpoint)
        assert list(resumed_a) == list(resumed_b)

    def test_scalable_stream_resumes_mid_day(self):
        config = _scalable_config()
        reference = list(ScalableWorldStream(config))
        stream = ScalableWorldStream(_scalable_config())
        events = stream.events()
        consumed = [next(events) for _ in range(len(reference) // 2)]
        checkpoint = stream.checkpoint()
        resumed = ScalableWorldStream(_scalable_config())
        resumed.seek(checkpoint)
        assert consumed + list(resumed) == reference


# ---------------------------------------------------------------------------
# ScalableWorldStream: order, determinism, arrival process
# ---------------------------------------------------------------------------


class TestScalableWorldStream:
    def test_event_time_ordered_and_schema_valid(self):
        stream = ScalableWorldStream(_scalable_config())
        previous = None
        count = 0
        for txn in stream:
            assert validate_transaction(txn) is None
            key = transaction_sort_key(txn)
            assert previous is None or key >= previous
            previous = key
            count += 1
        assert count > 1_000

    def test_deterministic_for_a_seed(self):
        first = [t.transaction_id for t in ScalableWorldStream(_scalable_config())]
        second = [t.transaction_id for t in ScalableWorldStream(_scalable_config())]
        assert first == second

    def test_burst_amplifies_its_window(self):
        burst = BurstSpec(day=1, start_hour=20, duration_hours=2, amplitude=2.4)
        config = _scalable_config(arrival=ArrivalConfig(bursts=[burst]))
        by_day_hour = {}
        for txn in ScalableWorldStream(config):
            by_day_hour[(txn.day, txn.hour)] = by_day_hour.get((txn.day, txn.hour), 0) + 1
        quiet = by_day_hour.get((0, 20), 0)
        bursty = by_day_hour.get((1, 20), 0)
        assert bursty > 1.5 * max(quiet, 1)

    def test_fraud_campaigns_present(self):
        frauds = sum(t.is_fraud for t in ScalableWorldStream(_scalable_config()))
        assert frauds > 0


# ---------------------------------------------------------------------------
# Satellite a: budget-aware WorldConfig.validate
# ---------------------------------------------------------------------------


class TestConfigBudgetValidation:
    def test_fraud_budget_overflow_rejected(self):
        config = _stream_config()
        config.fraud = FraudConfig(
            repeat_offender_fraction=1.0,
            frauds_per_active_day=500.0,
            active_day_probability=1.0,
        )
        config.profile.fraudster_fraction = 0.4
        with pytest.raises(DataGenerationError, match="exceed the day's transaction budget"):
            config.validate()

    def test_burst_budget_overflow_rejected(self):
        bursts = [
            BurstSpec(day=0, start_hour=8, duration_hours=8, amplitude=6.0),
        ]
        config = _stream_config()
        config.arrival = ArrivalConfig(bursts=bursts)
        with pytest.raises(DataGenerationError, match="exceed the day's transaction budget"):
            config.validate()

    def test_burst_outside_horizon_rejected(self):
        config = _stream_config(num_days=2)
        config.arrival = ArrivalConfig(bursts=[BurstSpec(day=5, start_hour=8)])
        with pytest.raises(DataGenerationError, match="outside the simulated horizon"):
            config.validate()

    def test_tiny_population_rejected(self):
        config = _stream_config()
        config.profile.num_users = 1
        with pytest.raises(DataGenerationError):
            config.validate()

    def test_sane_config_accepted(self):
        config = _stream_config()
        config.arrival = ArrivalConfig(bursts=[BurstSpec(day=1, start_hour=19, amplitude=2.0)])
        config.validate()  # should not raise


# ---------------------------------------------------------------------------
# Satellite b: ProgressTracker
# ---------------------------------------------------------------------------


class TestProgressTracker:
    def test_counts_and_rates_without_logging_setup(self):
        tracker = ProgressTracker("unit", total=500, unit="rows", min_interval_s=9999.0)
        for _ in range(500):
            tracker.advance()
        report = tracker.finish()
        assert report["count"] == 500
        assert report["rate"] > 0
        assert report["elapsed_s"] > 0

    def test_advance_by_step(self):
        tracker = ProgressTracker("unit")
        tracker.advance(128)
        tracker.advance(72)
        assert tracker.finish()["count"] == 200

    def test_quiet_by_default(self, capsys):
        tracker = ProgressTracker("quiet", min_interval_s=0.0)
        tracker.advance()
        tracker.finish()
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""


# ---------------------------------------------------------------------------
# Streaming consumers: datasets and serving replay
# ---------------------------------------------------------------------------


@pytest.fixture()
def trained_server(world, feature_matrices):
    """A Model Server with a basic-features GBDT over the session world.

    Accounts from other worlds are served the neutral default row, so the
    same server can score any replayed stream.
    """
    train, _ = feature_matrices
    model = GradientBoostingClassifier(num_trees=10, seed=0).fit(train.values, train.labels)
    hbase = HBaseClient()
    hbase.create_feature_store()
    for profile in world.profiles:
        hbase.put(
            "titant_features",
            profile.user_id,
            BASIC_FEATURES_FAMILY,
            {
                "age": profile.age,
                "gender": profile.gender.value,
                "home_city": profile.home_city,
                "account_age_days": profile.account_age_days,
                "kyc_level": profile.kyc_level,
                "is_merchant": profile.is_merchant,
                "device_count": profile.device_count,
                "community": profile.community,
            },
            version=1,
        )
    server = ModelServer(hbase, ModelServerConfig())
    server.load_model(model, version="stream_test_v1", threshold=0.5)
    return server


class TestStreamingConsumers:
    def test_from_stream_matches_materialized_builder(self):
        config = small_world_config(num_users=150, num_days=40, seed=7)
        world = generate_world(config)
        built = RollingDatasets.build(world, num_datasets=2, network_days=25, train_days=7)
        streamed = RollingDatasets.from_stream(
            WorldStream(small_world_config(num_users=150, num_days=40, seed=7)),
            num_datasets=2,
            network_days=25,
            train_days=7,
        )
        assert len(built) == len(streamed)
        for a, b in zip(built, streamed):
            assert a.spec == b.spec
            assert a.network_transactions == b.network_transactions
            assert a.train_transactions == b.train_transactions
            assert a.test_transactions == b.test_transactions

    def test_replay_consumes_stream_lazily_with_parity(self, trained_server):
        """An event-ordered stream replays identically to its sorted list."""
        config = _stream_config(num_users=120, num_days=2, seed=3)
        materialized = sorted(WorldStream(config), key=transaction_sort_key)

        eager = AlipayServer(trained_server)
        eager_report = eager.replay_transactions(materialized)

        stream = WorldStream(_stream_config(num_users=120, num_days=2, seed=3), order="event")
        lazy = AlipayServer(trained_server, retain_served=False)
        lazy_report = lazy.replay_transactions(stream)

        assert lazy.served == []  # bounded-memory mode keeps no per-request rows
        assert lazy_report.total == eager_report.total == len(materialized)
        assert lazy_report.interrupted == eager_report.interrupted
        assert lazy_report.true_alerts == eager_report.true_alerts


# ---------------------------------------------------------------------------
# Satellite e: the shared benchmark artifact schema
# ---------------------------------------------------------------------------


def _load_check_bench():
    spec = importlib.util.spec_from_file_location(
        "check_bench", REPO_ROOT / "scripts" / "check_bench.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCheckBench:
    def test_committed_artifacts_validate(self):
        check_bench = _load_check_bench()
        assert check_bench.validate_all(REPO_ROOT) == 0

    def test_schema_violations_reported(self, tmp_path):
        check_bench = _load_check_bench()
        bad = tmp_path / "BENCH_sustained_load.json"
        bad.write_text(json.dumps({"benchmark": "sustained_load", "mode": "warp"}))
        errors = check_bench.validate_artifact(bad, json.loads(bad.read_text()))
        assert errors  # missing envelope fields must be flagged

    def test_regression_gate_enforces_only_with_perf_asserts(self, tmp_path):
        check_bench = _load_check_bench()

        def artifact(name: str, rps: float, active: bool) -> Path:
            path = tmp_path / name
            path.write_text(
                json.dumps(
                    {
                        "benchmark": "sustained_load",
                        "mode": "smoke",
                        "platform": "test",
                        "cpu_count": 4,
                        "perf_asserts_active": active,
                        "serving": {"sustained_rps": rps},
                    }
                )
            )
            return path

        baseline = artifact("base.json", 1000.0, True)
        regressed = artifact("cand.json", 100.0, True)
        assert check_bench.check_regression(regressed, baseline, 0.3) == 1
        # Same regression is advisory when perf asserts were inactive.
        advisory = artifact("cand2.json", 100.0, False)
        assert check_bench.check_regression(advisory, baseline, 0.3) == 0
